package wal

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// SyncPolicy selects how hard an append pushes bytes toward the disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log after every append: a batch reported
	// durable survives a machine crash, not just a process kill.
	SyncAlways SyncPolicy = iota
	// SyncNone hands appends to the OS page cache and lets the kernel
	// schedule the write-back. A SIGKILL'd process loses nothing; a
	// power loss may lose the last few seconds. Checkpoints still sync.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// LogName is the write-ahead log's file name inside a WAL directory.
const LogName = "wal.log"

// headerVersion versions the log file's header frame.
const headerVersion uint16 = 1

// NetworkID fingerprints the road network a log (or checkpoint)
// belongs to: the FNV-64a hash of the network's TSV serialization plus
// its dimensions for error messages. Computing it costs one full
// serialization pass — do it once per startup via IdentityOf and pass
// the value around.
type NetworkID struct {
	Hash        uint64
	NumVertices int
	NumEdges    int
}

// IdentityOf computes a road network's identity. Two graphs with the
// same identity answer the same queries; a WAL or checkpoint is only
// ever replayed onto a network with the identity it was written
// against.
func IdentityOf(g *roadnet.Graph) (NetworkID, error) {
	h := fnv.New64a()
	if err := roadnet.WriteTSV(h, g); err != nil {
		return NetworkID{}, fmt.Errorf("wal: fingerprinting road network: %w", err)
	}
	return NetworkID{Hash: h.Sum64(), NumVertices: g.NumVertices(), NumEdges: g.NumEdges()}, nil
}

// header is the log file's first frame: which road network the records
// belong to, and the sequence number of the first record in this file
// (rotation resets the file, not the sequence).
type header struct {
	RoadHash        uint64
	NumVertices     int
	NumEdges        int
	BaseSeq         uint64
	CreatedUnixNano int64
}

// Batch is the append unit: the trajectories of one ingest call, plus
// the ingest mode they were applied with so replay applies them
// identically.
type Batch struct {
	// SkipMapMatching mirrors core.IngestOptions.SkipMapMatching at
	// append time: true for already-matched paths (HTTP /ingest, the
	// streaming pipeline), false for raw-GPS ingests that re-run the
	// matcher on replay.
	SkipMapMatching bool
	Trajs           []*traj.Trajectory
}

// RecoveryInfo reports what Open found in an existing log.
type RecoveryInfo struct {
	// Records and Trajectories count what was handed to the replay
	// callback (sequence >= fromSeq); Skipped counts records below
	// fromSeq, already folded into the checkpoint.
	Records      int
	Trajectories int
	Skipped      int
	// Torn reports that the final record was incomplete — a crash
	// mid-append — and was truncated away.
	Torn bool
	// NextSeq is the sequence the next Append will carry: the total
	// number of batches ever durably appended to this log's lineage.
	NextSeq uint64
}

// Log is an append-only, length-prefixed, checksummed record log bound
// to one road network. Appends are not safe for concurrent use; the
// serving layer serializes them behind its write lock.
type Log struct {
	dir  string
	sync SyncPolicy
	net  NetworkID

	f       *os.File
	nextSeq uint64
	size    atomic.Int64
}

// Open opens dir's log for appending, creating the directory and file
// if absent. An existing log is scanned end to end first: the header's
// road identity must match net, every record's checksum and sequence
// must verify, and each record with sequence >= fromSeq is decoded and
// handed to fn in order (fn may be nil to scan without replaying). A
// torn final record — the signature of a crash mid-append — is
// truncated away and reported in RecoveryInfo, and a file that ends
// inside its own header frame (a crash during log creation, before
// anything could have been acknowledged) is recreated; corruption
// anywhere else fails loudly so a damaged log is never silently
// half-replayed.
func Open(dir string, net NetworkID, sync SyncPolicy, fromSeq uint64, fn func(seq uint64, b Batch) error) (*Log, RecoveryInfo, error) {
	var ri RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ri, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ri, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l := &Log{dir: dir, sync: sync, net: net, f: f}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ri, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if torn, err := headerTorn(f, info.Size()); err != nil {
		f.Close()
		return nil, ri, err
	} else if info.Size() == 0 || torn {
		// Fresh log (or one whose creation crashed mid-header — nothing
		// was ever appended to it): records start where recovery left
		// off, so a log created right after loading a checkpoint
		// continues its lineage's sequence.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, ri, fmt.Errorf("wal: resetting %s: %w", path, err)
		}
		if err := l.writeHeader(f, fromSeq); err != nil {
			f.Close()
			return nil, ri, err
		}
		l.nextSeq = fromSeq
		ri.NextSeq = fromSeq
		return l, ri, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, ri, fmt.Errorf("wal: seeking %s: %w", path, err)
	}

	br := &countingReader{r: f}
	var hdr header
	if err := codec.ReadFrame(br, headerVersion, &hdr); err != nil {
		f.Close()
		return nil, ri, fmt.Errorf("wal: reading %s header: %w", path, err)
	}
	if hdr.RoadHash != net.Hash {
		f.Close()
		return nil, ri, fmt.Errorf("wal: %s belongs to a different road network (log %d vertices / %d edges, hash %016x; serving %d / %d, hash %016x)",
			path, hdr.NumVertices, hdr.NumEdges, hdr.RoadHash, net.NumVertices, net.NumEdges, net.Hash)
	}
	if hdr.BaseSeq > fromSeq {
		f.Close()
		return nil, ri, fmt.Errorf("wal: %s begins at sequence %d but recovery starts at %d — the covering checkpoint is missing", path, hdr.BaseSeq, fromSeq)
	}

	good := br.n // offset after the last fully-verified record
	expect := hdr.BaseSeq
	for {
		seq, payload, err := codec.ReadRecord(br)
		if err == io.EOF {
			break
		}
		if errors.Is(err, codec.ErrTorn) {
			ri.Torn = true
			break
		}
		if err != nil {
			f.Close()
			return nil, ri, fmt.Errorf("wal: %s at offset %d: %w", path, good, err)
		}
		if seq != expect {
			f.Close()
			return nil, ri, fmt.Errorf("wal: %s at offset %d: %w: sequence %d, expected %d", path, good, codec.ErrCorrupt, seq, expect)
		}
		if seq < fromSeq {
			ri.Skipped++
		} else {
			b, err := decodeBatch(payload)
			if err != nil {
				f.Close()
				return nil, ri, fmt.Errorf("wal: %s record %d: %w", path, seq, err)
			}
			if fn != nil {
				if err := fn(seq, b); err != nil {
					f.Close()
					return nil, ri, err
				}
			}
			ri.Records++
			ri.Trajectories += len(b.Trajs)
		}
		expect = seq + 1
		good = br.n
	}
	if ri.Torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, ri, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, ri, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	l.nextSeq = expect
	l.size.Store(good)
	ri.NextSeq = expect
	return l, ri, nil
}

// headerTorn reports whether the file ends inside its own header frame
// — the signature of a crash during log creation. writeHeader syncs
// before the first Append can run, so such a file provably holds no
// acknowledged records and is safe to recreate. A file whose header
// bytes are all present but wrong is NOT torn; the caller's ReadFrame
// fails loudly on it.
func headerTorn(f *os.File, size int64) (bool, error) {
	if size == 0 {
		return false, nil
	}
	if size < codec.FrameHeaderLen {
		return true, nil
	}
	prefix := make([]byte, codec.FrameHeaderLen)
	if _, err := f.ReadAt(prefix, 0); err != nil {
		return false, fmt.Errorf("wal: reading header prefix: %w", err)
	}
	if n, ok := codec.FrameLen(prefix); ok && size < n {
		return true, nil
	}
	return false, nil
}

// countingReader tracks how many bytes have been consumed, so Open
// knows the exact offset of the last verified record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (l *Log) writeHeader(f *os.File, baseSeq uint64) error {
	hdr := header{
		RoadHash:        l.net.Hash,
		NumVertices:     l.net.NumVertices,
		NumEdges:        l.net.NumEdges,
		BaseSeq:         baseSeq,
		CreatedUnixNano: time.Now().UnixNano(),
	}
	var buf bytes.Buffer
	if err := codec.WriteFrame(&buf, headerVersion, &hdr); err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wal: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header: %w", err)
	}
	l.size.Store(int64(buf.Len()))
	return nil
}

// Append writes one batch as the next record and, under SyncAlways,
// fsyncs it. On any failure — the write or the fsync — the log rolls
// back to the last good record before returning, so a half-appended or
// unsynced record can never sit in the file while the sequence counter
// stays behind (the next append would duplicate its sequence and
// poison recovery).
func (l *Log) Append(b Batch) (seq uint64, err error) {
	payload, err := encodeBatch(b)
	if err != nil {
		return l.nextSeq, err
	}
	seq = l.nextSeq
	if err := codec.WriteRecord(l.f, seq, payload); err != nil {
		l.rollback()
		return seq, err
	}
	if l.sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.rollback()
			return seq, fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.nextSeq++
	l.size.Add(codec.RecordLen(len(payload)))
	return seq, nil
}

// rollback drops whatever partial bytes an unfinished append left
// behind; best effort (a failing truncate leaves a torn tail, which
// recovery tolerates).
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size.Load()); err == nil {
		l.f.Seek(l.size.Load(), io.SeekStart)
	}
}

// NextSeq returns the sequence the next Append will carry.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Size returns the log's current on-disk size in bytes. Safe to read
// concurrently with appends.
func (l *Log) Size() int64 { return l.size.Load() }

// Network returns the road-network identity the log is bound to.
func (l *Log) Network() NetworkID { return l.net }

// Rebind switches the log to a different road network, effective at
// the next Rotate (which writes the new identity into the fresh
// header). The serving layer calls it when a published router replaces
// the engine's world, immediately before the checkpoint + rotation
// that reset the durability baseline.
func (l *Log) Rebind(net NetworkID) { l.net = net }

// Rotate resets the log after a checkpoint covering every record so
// far: a fresh file whose header starts the sequence at NextSeq
// atomically replaces the old one. Safe against crashes at any point —
// until the rename lands, recovery skips the old records by sequence
// (they are below the checkpoint's covered sequence). Once the rename
// has landed the in-memory handle always follows it, even if the
// directory fsync afterwards fails (that error is reported, but
// appends must go to the file recovery will actually read).
func (l *Log) Rotate() error {
	tmp, err := os.CreateTemp(l.dir, LogName+".rotate-*")
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	fresh := &Log{dir: l.dir, sync: l.sync, net: l.net, f: tmp}
	if err := fresh.writeHeader(tmp, l.nextSeq); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.dir, LogName)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rotate rename: %w", err)
	}
	l.f.Close()
	l.f = tmp
	l.size.Store(fresh.size.Load())
	return syncDir(l.dir)
}

// Close releases the log's file handle. Appended records are already
// on their way to disk (or on it, under SyncAlways); Close does not
// checkpoint.
func (l *Log) Close() error { return l.f.Close() }

// encodeBatch/decodeBatch gob-round-trip one batch. Gob is not the
// most compact record payload, but it carries the full trajectory —
// records, ground-truth and matched paths, metadata — so replay has
// exactly what the original ingest saw.
func encodeBatch(b Batch) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&b); err != nil {
		return nil, fmt.Errorf("wal: encoding batch: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
		return b, fmt.Errorf("wal: decoding batch: %w", err)
	}
	return b, nil
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}
