package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures append throughput per fsync policy: the
// cost the serving write path pays, per batch of 16 trajectories,
// before each copy-on-write snapshot swap. trajs/s is the headline
// number in BENCH_wal.json.
func BenchmarkWALAppend(b *testing.B) {
	road, ts := testWorld(b, 1)
	const batchTrajs = 16
	batch := Batch{SkipMapMatching: true}
	for i := 0; i < batchTrajs; i++ {
		batch.Trajs = append(batch.Trajs, ts[i%len(ts)])
	}
	for _, policy := range []SyncPolicy{SyncNone, SyncAlways} {
		b.Run(fmt.Sprintf("sync=%s", policy), func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, mustID(b, road), policy, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batchTrajs)*float64(b.N)/b.Elapsed().Seconds(), "trajs/s")
		})
	}
}

// BenchmarkWALRecovery measures a restart's replay scan: verify and
// decode a 256-record log end to end (the part of recovery the WAL
// owns; applying the batches is the router's usual ingest cost).
func BenchmarkWALRecovery(b *testing.B) {
	road, ts := testWorld(b, 2)
	dir := b.TempDir()
	l, _, err := Open(dir, mustID(b, road), SyncNone, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	const records = 256
	for i := 0; i < records; i++ {
		if _, err := l.Append(batchOf(ts[i%len(ts):i%len(ts)+1], i)); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l, ri, err := Open(dir, mustID(b, road), SyncNone, 0, func(uint64, Batch) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records || ri.Records != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		l.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
