// Package wal makes live-ingested routing state survive restarts: a
// write-ahead log plus checkpointing, the durability layer under
// internal/serve's copy-on-write ingestion.
//
// Without it the online loop is a cache — every trajectory ingested at
// runtime mutates only the in-memory snapshot, and a process restart
// silently rolls the router back to its build artifact. With it the
// loop is a database: matched trajectory batches are appended to an
// append-only log *before* the snapshot swap that applies them, and a
// restart replays the log over the latest checkpoint to reconstruct
// exactly the state the crashed process had durably acknowledged.
//
// # The log
//
// One file per WAL directory (wal.log): a header frame naming the road
// network it belongs to (an FNV-64a fingerprint of the network's TSV
// serialization, plus the base sequence), followed by length-prefixed,
// checksummed, sequence-numbered records (internal/codec's record
// framing). Each record is one ingest batch, gob-encoded with the
// ingest mode it was applied under, so replay applies it identically.
// Appends go out in a single write; the fsync policy (SyncAlways /
// SyncNone) chooses between machine-crash and process-crash
// durability.
//
// # Checkpoints
//
// A checkpoint (checkpoint.l2r) folds the log into the router: the
// serving snapshot is saved through the existing core v2 artifact
// envelope (save generation advanced), wrapped with the log sequence
// it covers, written to a temp file and atomically renamed; the log is
// then rotated to a fresh file starting at that sequence. Because the
// covered sequence travels inside the checkpoint file itself, a crash
// between the rename and the rotation is harmless — recovery skips
// already-covered records by sequence.
//
// # Recovery
//
// Open scans an existing log end to end before serving: the road
// identity must match, checksums and sequence continuity must verify,
// and surviving records are handed to the caller for replay. A torn
// final record (a crash mid-append) is truncated and tolerated;
// corruption anywhere else fails loudly — a damaged log is never
// silently half-replayed. Recovery never writes, so it is idempotent:
// crashing during recovery and recovering again lands in the same
// state.
//
// internal/serve wires this under Engine and Fleet (per-tenant WAL
// directories); OPERATIONS.md is the operator-facing runbook.
package wal
