package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/core"
)

// CheckpointName is the checkpoint's file name inside a WAL directory.
const CheckpointName = "checkpoint.l2r"

// checkpointVersion versions the checkpoint wrapper frame (the router
// inside it carries its own core artifact version).
const checkpointVersion uint16 = 1

// checkpointEnvelope wraps the core v2 artifact with the WAL position
// it covers. Keeping the sequence inside the same atomically-renamed
// file closes the crash window between "checkpoint written" and "log
// rotated": recovery skips log records below Seq whether or not the
// rotation landed.
type checkpointEnvelope struct {
	// Seq is the first WAL sequence NOT folded into the artifact:
	// recovery replays records with sequence >= Seq on top of it.
	Seq uint64
	// NextTrajectoryID is the engine's trajectory-ID counter at
	// checkpoint time, so IDs handed out after a restart never collide
	// with ones already folded into the artifact.
	NextTrajectoryID uint64
	// RoadHash is the identity of the road network the artifact sits
	// on, precomputed so recovery can verify it against the configured
	// base without re-serializing the checkpoint's network.
	RoadHash uint64
	// Artifact is the router in the standard core artifact envelope
	// (Router.Save bytes — loadable by core.Load on its own).
	Artifact []byte
}

// Checkpoint is a loaded checkpoint: the recovered router plus the
// envelope's bookkeeping.
type Checkpoint struct {
	Router           *core.Router
	Seq              uint64
	NextTrajectoryID uint64
	RoadHash         uint64
}

// WriteCheckpoint persists r as dir's checkpoint covering every WAL
// record below seq, recording the engine's trajectory-ID watermark and
// the road-network identity alongside. The router goes through
// Router.Save — the core v2 artifact envelope, save generation
// advanced — wrapped with that bookkeeping, written to a temp file and
// atomically renamed, so a crash mid-checkpoint leaves the previous
// checkpoint intact.
func WriteCheckpoint(dir string, r *core.Router, seq, nextTrajID uint64, road NetworkID) error {
	var art bytes.Buffer
	if err := r.Save(&art); err != nil {
		return fmt.Errorf("wal: checkpoint save: %w", err)
	}
	env := checkpointEnvelope{Seq: seq, NextTrajectoryID: nextTrajID, RoadHash: road.Hash, Artifact: art.Bytes()}
	tmp, err := os.CreateTemp(dir, CheckpointName+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := codec.WriteFrame(tmp, checkpointVersion, &env); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, CheckpointName)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// ReadCheckpoint loads dir's checkpoint. ok is false when none exists
// (a cold start); any other failure — unreadable, corrupt, undecodable
// — is an error, because serving from a base artifact while silently
// ignoring a checkpoint would roll learned state back.
func ReadCheckpoint(dir string) (c *Checkpoint, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, CheckpointName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("wal: opening checkpoint: %w", err)
	}
	defer f.Close()
	var env checkpointEnvelope
	if err := codec.ReadFrame(f, checkpointVersion, &env); err != nil {
		return nil, false, fmt.Errorf("wal: reading checkpoint: %w", err)
	}
	router, err := core.Load(bytes.NewReader(env.Artifact))
	if err != nil {
		return nil, false, fmt.Errorf("wal: loading checkpoint artifact: %w", err)
	}
	return &Checkpoint{
		Router:           router,
		Seq:              env.Seq,
		NextTrajectoryID: env.NextTrajectoryID,
		RoadHash:         env.RoadHash,
	}, true, nil
}
