package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

func testWorld(tb testing.TB, seed int64) (*roadnet.Graph, []*traj.Trajectory) {
	tb.Helper()
	road := roadnet.Generate(roadnet.Tiny(seed))
	ts := traj.NewSimulator(road, traj.D2Like(seed, 60)).Run()
	if len(ts) < 10 {
		tb.Fatalf("simulator made only %d trips", len(ts))
	}
	return road, ts
}

func batchOf(ts []*traj.Trajectory, id0 int) Batch {
	b := Batch{SkipMapMatching: true}
	for i, t := range ts {
		b.Trajs = append(b.Trajs, &traj.Trajectory{ID: id0 + i, Driver: t.Driver, Depart: t.Depart, Peak: t.Peak, Truth: t.Truth})
	}
	return b
}

func mustID(tb testing.TB, road *roadnet.Graph) NetworkID {
	tb.Helper()
	id, err := IdentityOf(road)
	if err != nil {
		tb.Fatalf("IdentityOf: %v", err)
	}
	return id
}

func mustOpen(tb testing.TB, dir string, road *roadnet.Graph, fromSeq uint64, fn func(uint64, Batch) error) (*Log, RecoveryInfo) {
	tb.Helper()
	l, ri, err := Open(dir, mustID(tb, road), SyncAlways, fromSeq, fn)
	if err != nil {
		tb.Fatalf("Open: %v", err)
	}
	return l, ri
}

func TestColdStartEmptyDir(t *testing.T) {
	road, ts := testWorld(t, 1)
	dir := t.TempDir()
	l, ri := mustOpen(t, dir, road, 0, nil)
	if ri.Records != 0 || ri.Skipped != 0 || ri.Torn || ri.NextSeq != 0 {
		t.Fatalf("cold start RecoveryInfo = %+v, want zero", ri)
	}
	for i := 0; i < 3; i++ {
		seq, err := l.Append(batchOf(ts[i*2:i*2+2], i*2))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append seq = %d, want %d", seq, i)
		}
	}
	if l.NextSeq() != 3 {
		t.Fatalf("NextSeq = %d, want 3", l.NextSeq())
	}
	l.Close()

	var got []Batch
	l2, ri2 := mustOpen(t, dir, road, 0, func(seq uint64, b Batch) error {
		got = append(got, b)
		return nil
	})
	defer l2.Close()
	if ri2.Records != 3 || ri2.Trajectories != 6 || ri2.Torn || ri2.NextSeq != 3 {
		t.Fatalf("reopen RecoveryInfo = %+v", ri2)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d batches, want 3", len(got))
	}
	// Round-trip fidelity of the first batch.
	want := ts[0]
	have := got[0].Trajs[0]
	if have.ID != 0 || have.Driver != want.Driver || have.Depart != want.Depart || have.Peak != want.Peak {
		t.Fatalf("metadata did not round-trip: %+v", have)
	}
	if len(have.Truth) != len(want.Truth) {
		t.Fatalf("path length %d, want %d", len(have.Truth), len(want.Truth))
	}
	for i := range have.Truth {
		if have.Truth[i] != want.Truth[i] {
			t.Fatalf("path vertex %d = %d, want %d", i, have.Truth[i], want.Truth[i])
		}
	}
	if !got[0].SkipMapMatching {
		t.Fatal("SkipMapMatching flag lost")
	}
}

func TestTornFinalRecordTolerated(t *testing.T) {
	road, ts := testWorld(t, 2)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batchOf(ts[i:i+1], i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Tear the final record: chop bytes off the tail, as a crash
	// mid-append would.
	path := filepath.Join(dir, LogName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	var n int
	l2, ri := mustOpen(t, dir, road, 0, func(uint64, Batch) error { n++; return nil })
	if !ri.Torn {
		t.Fatal("torn tail not reported")
	}
	if n != 2 || ri.Records != 2 || ri.NextSeq != 2 {
		t.Fatalf("replayed %d records (info %+v), want 2", n, ri)
	}
	// The tail was truncated; appends continue cleanly at seq 2.
	if seq, err := l2.Append(batchOf(ts[3:4], 3)); err != nil || seq != 2 {
		t.Fatalf("post-truncation Append = (%d, %v), want (2, nil)", seq, err)
	}
	l2.Close()
	n = 0
	l3, ri3 := mustOpen(t, dir, road, 0, func(uint64, Batch) error { n++; return nil })
	defer l3.Close()
	if n != 3 || ri3.Torn {
		t.Fatalf("after repair replayed %d records (torn %v), want 3 clean", n, ri3.Torn)
	}
}

func TestCorruptMiddleRecordFailsLoud(t *testing.T) {
	road, ts := testWorld(t, 3)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	var mid int64
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batchOf(ts[i:i+1], i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if i == 0 {
			mid = l.Size() + 30 // somewhere inside record 1's payload
		}
	}
	l.Close()

	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, mid); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(dir, mustID(t, road), SyncAlways, 0, nil)
	if err == nil {
		t.Fatal("corrupt middle record did not fail Open")
	}
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("error %v does not wrap codec.ErrCorrupt", err)
	}
}

func TestRoadIdentityMismatch(t *testing.T) {
	road, ts := testWorld(t, 4)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	if _, err := l.Append(batchOf(ts[:1], 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	other := roadnet.Generate(roadnet.Tiny(99))
	if _, _, err := Open(dir, mustID(t, other), SyncAlways, 0, nil); err == nil {
		t.Fatal("foreign road network accepted")
	}
}

// TestPartialHeaderRecreated: a crash during log *creation* (the file
// exists but ends inside its own header frame) must not brick the
// directory — nothing was ever appended to such a log, so it is
// recreated.
func TestPartialHeaderRecreated(t *testing.T) {
	road, ts := testWorld(t, 41)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	headerSize := l.Size()
	l.Close()
	for _, cut := range []int64{1, 10, headerSize - 1} {
		if err := os.Truncate(filepath.Join(dir, LogName), cut); err != nil {
			t.Fatal(err)
		}
		l2, ri := mustOpen(t, dir, road, 0, nil)
		if ri.Records != 0 || ri.Torn {
			t.Fatalf("cut %d: RecoveryInfo = %+v, want clean cold start", cut, ri)
		}
		if _, err := l2.Append(batchOf(ts[:1], 0)); err != nil {
			t.Fatalf("cut %d: append after recreation: %v", cut, err)
		}
		l2.Close()
	}
}

func TestMissingCheckpointForRotatedLog(t *testing.T) {
	road, ts := testWorld(t, 5)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	for i := 0; i < 2; i++ {
		if _, err := l.Append(batchOf(ts[i:i+1], i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	l.Close()
	// The rotated log starts at seq 2; opening from seq 0 means the
	// checkpoint that covered records 0-1 is gone. Fail loud.
	if _, _, err := Open(dir, mustID(t, road), SyncAlways, 0, nil); err == nil {
		t.Fatal("rotated log without its checkpoint accepted")
	}
}

func TestRotatePreservesSequence(t *testing.T) {
	road, ts := testWorld(t, 6)
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, road, 0, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batchOf(ts[i:i+1], i)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Size()
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if l.Size() >= sizeBefore {
		t.Fatalf("rotation did not shrink the log (%d -> %d)", sizeBefore, l.Size())
	}
	if seq, err := l.Append(batchOf(ts[3:4], 3)); err != nil || seq != 3 {
		t.Fatalf("post-rotation Append = (%d, %v), want (3, nil)", seq, err)
	}
	l.Close()

	var seqs []uint64
	l2, ri := mustOpen(t, dir, road, 3, func(seq uint64, b Batch) error {
		seqs = append(seqs, seq)
		return nil
	})
	defer l2.Close()
	if len(seqs) != 1 || seqs[0] != 3 || ri.NextSeq != 4 {
		t.Fatalf("rotated log replay seqs %v (info %+v), want [3]", seqs, ri)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	road, ts := testWorld(t, 7)
	r, err := core.Build(road, ts[:len(ts)*3/4], core.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := t.TempDir()
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir ReadCheckpoint = ok %v, err %v", ok, err)
	}
	id := mustID(t, road)
	genBefore := r.Meta().Generation
	if err := WriteCheckpoint(dir, r, 42, 7, id); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	c, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("ReadCheckpoint = ok %v, err %v", ok, err)
	}
	if c.Seq != 42 || c.NextTrajectoryID != 7 || c.RoadHash != id.Hash {
		t.Fatalf("checkpoint envelope = %+v, want seq 42, id watermark 7, road hash %016x", c, id.Hash)
	}
	if c.Router.Meta().Generation != genBefore+1 {
		t.Fatalf("checkpoint generation = %d, want %d (save advances)", c.Router.Meta().Generation, genBefore+1)
	}
	// The recovered router answers like the original.
	for _, tr := range ts[len(ts)*3/4:] {
		a := r.Route(tr.Source(), tr.Destination())
		b := c.Router.Route(tr.Source(), tr.Destination())
		if len(a.Path) != len(b.Path) {
			t.Fatalf("checkpoint route differs for %d->%d", tr.Source(), tr.Destination())
		}
		for i := range a.Path {
			if a.Path[i] != b.Path[i] {
				t.Fatalf("checkpoint route differs for %d->%d at hop %d", tr.Source(), tr.Destination(), i)
			}
		}
	}
}

func TestCorruptCheckpointFailsLoud(t *testing.T) {
	road, ts := testWorld(t, 8)
	r, err := core.Build(road, ts, core.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, r, 1, 0, mustID(t, road)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CheckpointName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
