package fuel

import "math"

// Model holds the coefficients of the consumption curve
//
//	liters/km(v) = A/v + B + C*v²
//
// where v is the speed in km/h. The A/v term captures idle-dominated city
// driving, the C*v² term aerodynamic drag at high speed. The defaults are
// calibrated so that the minimum sits near 70 km/h at roughly
// 0.055 L/km (~5.5 L/100km), a typical passenger-car figure.
type Model struct {
	A float64 // idle term, L·h/km² — dominates at low speed
	B float64 // rolling resistance baseline, L/km
	C float64 // drag term, L·h²/km³ — dominates at high speed

	// StopPenalty is the extra consumption (liters) charged for each
	// expected stop along an edge; intersections on minor roads are the
	// main source.
	StopPenalty float64
}

// Default returns the passenger-vehicle model used throughout the
// reproduction.
func Default() Model {
	return Model{
		A:           1.20,
		B:           0.030,
		C:           4.0e-6,
		StopPenalty: 0.008,
	}
}

// PerKm returns the cruising consumption in liters per kilometer at the
// given speed (km/h). Speeds are clamped to [5, 200] to keep the 1/v term
// finite on degenerate inputs.
func (m Model) PerKm(speedKmh float64) float64 {
	v := math.Min(math.Max(speedKmh, 5), 200)
	return m.A/v + m.B + m.C*v*v
}

// EdgeLiters returns the fuel consumed traversing an edge of the given
// length (meters) at the given speed limit (km/h), with expectedStops
// expected stops (fractional values allowed; e.g. a residential edge may
// carry 0.5 expected stops).
func (m Model) EdgeLiters(lengthM, speedKmh, expectedStops float64) float64 {
	return m.PerKm(speedKmh)*lengthM/1000 + m.StopPenalty*expectedStops
}

// OptimalSpeed returns the speed (km/h) minimizing PerKm. For the default
// coefficients this is about 67 km/h, which is why highway-heavy paths
// are usually — but not always — fuel-optimal.
func (m Model) OptimalSpeed() float64 {
	// d/dv (A/v + B + Cv²) = -A/v² + 2Cv = 0  =>  v³ = A/(2C).
	return math.Cbrt(m.A / (2 * m.C))
}
