package fuel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerKmConvexShape(t *testing.T) {
	m := Default()
	low := m.PerKm(10)
	opt := m.PerKm(m.OptimalSpeed())
	high := m.PerKm(180)
	if !(low > opt && high > opt) {
		t.Errorf("consumption not convex: 10km/h=%v opt=%v 180km/h=%v", low, opt, high)
	}
}

func TestOptimalSpeedIsMinimum(t *testing.T) {
	m := Default()
	v := m.OptimalSpeed()
	if v < 50 || v > 90 {
		t.Fatalf("optimal speed %v outside plausible band", v)
	}
	eps := 1.0
	if m.PerKm(v) > m.PerKm(v-eps) || m.PerKm(v) > m.PerKm(v+eps) {
		t.Errorf("PerKm(%v) is not a local minimum", v)
	}
}

func TestPerKmClampsSpeed(t *testing.T) {
	m := Default()
	if got, want := m.PerKm(0), m.PerKm(5); got != want {
		t.Errorf("low clamp: %v != %v", got, want)
	}
	if got, want := m.PerKm(1e9), m.PerKm(200); got != want {
		t.Errorf("high clamp: %v != %v", got, want)
	}
}

func TestEdgeLitersPositiveAndAdditive(t *testing.T) {
	m := Default()
	f := func(lenRaw, speedRaw, stopsRaw float64) bool {
		length := math.Abs(math.Mod(lenRaw, 1e5))
		speed := 5 + math.Abs(math.Mod(speedRaw, 150))
		stops := math.Abs(math.Mod(stopsRaw, 3))
		if math.IsNaN(length) || math.IsNaN(speed) || math.IsNaN(stops) {
			return true
		}
		l := m.EdgeLiters(length, speed, stops)
		if l < 0 {
			return false
		}
		// Additivity in length: two halves sum to the whole (stops held
		// at zero).
		whole := m.EdgeLiters(length, speed, 0)
		halves := 2 * m.EdgeLiters(length/2, speed, 0)
		return math.Abs(whole-halves) < 1e-9*(1+whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopPenaltyCharged(t *testing.T) {
	m := Default()
	with := m.EdgeLiters(1000, 50, 2)
	without := m.EdgeLiters(1000, 50, 0)
	if diff := with - without; math.Abs(diff-2*m.StopPenalty) > 1e-12 {
		t.Errorf("stop penalty diff = %v want %v", diff, 2*m.StopPenalty)
	}
}
