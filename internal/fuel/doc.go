// Package fuel implements the speed-based vehicular environmental-impact
// model used to annotate road-network edges with fuel-consumption (FC)
// weights. The paper computes FC "based on speed limits using vehicular
// environmental impact models" (Ecomark / Ecomark 2.0). We reproduce the
// standard shape of such models: consumption per kilometer is a convex
// function of cruising speed with a minimum in the 60-80 km/h range, plus
// a per-stop penalty that penalizes low-class roads with intersections.
package fuel
