package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// VertexID identifies a vertex (road intersection) in a Graph.
type VertexID int32

// EdgeID identifies a directed edge (road segment) in a Graph.
type EdgeID int32

// NoVertex is the sentinel for "no vertex".
const NoVertex VertexID = -1

// NoEdge is the sentinel for "no edge".
const NoEdge EdgeID = -1

// RoadType is the OSM-style road classification used as the RT weight and
// as the road-condition feature space of the preference model. Order is
// from most to least important; the paper uses these six types.
type RoadType uint8

// Road types, from motorway down to residential.
const (
	Motorway RoadType = iota
	Trunk
	Primary
	Secondary
	Tertiary
	Residential
	NumRoadTypes = 6
)

var roadTypeNames = [NumRoadTypes]string{
	"motorway", "trunk", "primary", "secondary", "tertiary", "residential",
}

// String implements fmt.Stringer.
func (t RoadType) String() string {
	if int(t) < len(roadTypeNames) {
		return roadTypeNames[t]
	}
	return fmt.Sprintf("roadtype(%d)", uint8(t))
}

// DefaultSpeedKmh returns the free-flow speed limit assumed for the road
// type, in km/h.
func (t RoadType) DefaultSpeedKmh() float64 {
	switch t {
	case Motorway:
		return 120
	case Trunk:
		return 90
	case Primary:
		return 70
	case Secondary:
		return 60
	case Tertiary:
		return 50
	default:
		return 30
	}
}

// ExpectedStops returns the expected number of full stops when traversing
// one edge of this type; used by the fuel model.
func (t RoadType) ExpectedStops() float64 {
	switch t {
	case Motorway:
		return 0
	case Trunk:
		return 0.05
	case Primary:
		return 0.15
	case Secondary:
		return 0.25
	case Tertiary:
		return 0.4
	default:
		return 0.6
	}
}

// Edge is a directed road segment.
type Edge struct {
	From, To VertexID
	// Length is the segment length in meters (the DI weight).
	Length float64
	// TravelTime is the free-flow traversal time in seconds (the TT
	// weight).
	TravelTime float64
	// Fuel is the traversal fuel consumption in liters (the FC weight).
	Fuel float64
	// Type is the road classification (the RT weight).
	Type RoadType
}

// Graph is an immutable road network. Build one with a Builder. Vertices
// and edges are stored in dense arrays; the adjacency structure is CSR
// (compressed sparse row) over out-edges, plus a mirrored CSR over
// in-edges for reverse traversals.
type Graph struct {
	pts   []geo.Point
	edges []Edge

	outStart []int32  // len = |V|+1
	outEdges []EdgeID // len = |E|, sorted by From

	inStart []int32
	inEdges []EdgeID
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns |E| (directed edges).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Point returns the planar location of v.
func (g *Graph) Point(v VertexID) geo.Point { return g.pts[v] }

// Edge returns the edge record for e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Out returns the IDs of edges leaving v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Out(v VertexID) []EdgeID {
	return g.outEdges[g.outStart[v]:g.outStart[v+1]]
}

// In returns the IDs of edges entering v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) In(v VertexID) []EdgeID {
	return g.inEdges[g.inStart[v]:g.inStart[v+1]]
}

// FindEdge returns the ID of the directed edge from u to v, or NoEdge.
func (g *Graph) FindEdge(u, v VertexID) EdgeID {
	for _, e := range g.Out(u) {
		if g.edges[e].To == v {
			return e
		}
	}
	return NoEdge
}

// Bounds returns the bounding rectangle of all vertices.
func (g *Graph) Bounds() geo.Rect { return geo.Bound(g.pts) }

// Weight is the cost feature used as the master dimension of a routing
// preference: one of the paper's travel-cost weight functions.
type Weight uint8

// The three travel-cost weights of the preference model plus RT, which is
// not a scalar cost but is listed for completeness of W.
const (
	DI Weight = iota // distance, meters
	TT               // travel time, seconds
	FC               // fuel consumption, liters
)

// NumCostWeights is the number of scalar travel-cost weights (DI, TT, FC).
const NumCostWeights = 3

// String implements fmt.Stringer.
func (w Weight) String() string {
	switch w {
	case DI:
		return "DI"
	case TT:
		return "TT"
	case FC:
		return "FC"
	}
	return fmt.Sprintf("weight(%d)", uint8(w))
}

// EdgeWeight returns the scalar cost of edge e under weight w.
func (g *Graph) EdgeWeight(e EdgeID, w Weight) float64 {
	ed := &g.edges[e]
	switch w {
	case DI:
		return ed.Length
	case TT:
		return ed.TravelTime
	default:
		return ed.Fuel
	}
}

// Path is a sequence of vertices where consecutive vertices are connected
// by an edge.
type Path []VertexID

// Valid reports whether the path is connected in g and non-empty.
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for i := 1; i < len(p); i++ {
		if g.FindEdge(p[i-1], p[i]) == NoEdge {
			return false
		}
	}
	return true
}

// Cost returns the total cost of the path under weight w. Unconnected
// steps contribute +Inf.
func (p Path) Cost(g *Graph, w Weight) float64 {
	var c float64
	for i := 1; i < len(p); i++ {
		e := g.FindEdge(p[i-1], p[i])
		if e == NoEdge {
			return math.Inf(1)
		}
		c += g.EdgeWeight(e, w)
	}
	return c
}

// Length returns the total length of the path in meters.
func (p Path) Length(g *Graph) float64 { return p.Cost(g, DI) }

// Edges returns the edge IDs along the path. Unconnected steps yield
// NoEdge entries.
func (p Path) Edges(g *Graph) []EdgeID {
	if len(p) < 2 {
		return nil
	}
	out := make([]EdgeID, 0, len(p)-1)
	for i := 1; i < len(p); i++ {
		out = append(out, g.FindEdge(p[i-1], p[i]))
	}
	return out
}

// Polyline returns the geometry of the path.
func (p Path) Polyline(g *Graph) geo.Polyline {
	pl := make(geo.Polyline, len(p))
	for i, v := range p {
		pl[i] = g.Point(v)
	}
	return pl
}

// Concat joins paths end to start: the last vertex of each piece must
// equal the first vertex of the next, and the duplicate is dropped.
// Empty pieces are skipped. Concat panics if the pieces do not line up;
// callers construct the pieces so this is a programming error.
func Concat(pieces ...Path) Path {
	var out Path
	for _, p := range pieces {
		if len(p) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, p...)
			continue
		}
		if out[len(out)-1] != p[0] {
			panic(fmt.Sprintf("roadnet.Concat: pieces do not join (%d != %d)", out[len(out)-1], p[0]))
		}
		out = append(out, p[1:]...)
	}
	return out
}
