package roadnet

import (
	"math"
	"math/rand"

	"repro/internal/geo"
)

// GenConfig parameterizes the synthetic road-network generator. The
// generator lays out a set of towns, each an urban grid with a road-type
// hierarchy (residential blocks, tertiary collectors, secondary arterials,
// a primary cross), and connects towns with trunk/motorway corridors whose
// geometry is subdivided so highway edges have realistic lengths.
//
// This stands in for the paper's OSM extracts: the learning pipeline only
// observes topology, the four weight functions, and geometry, all of
// which the generator reproduces at laptop scale.
type GenConfig struct {
	Seed int64
	// Width and Height bound the map in meters.
	Width, Height float64
	// Towns is the number of urban grids to place.
	Towns int
	// TownMinSide and TownMaxSide bound the number of grid vertices per
	// town side.
	TownMinSide, TownMaxSide int
	// BlockM is the urban block size in meters.
	BlockM float64
	// HighwaySegM is the target length of one highway segment in meters.
	HighwaySegM float64
	// ExtraLinks adds this many extra nearest-neighbour intercity links
	// beyond the spanning tree, creating route choice.
	ExtraLinks int
	// Jitter perturbs grid vertices by up to this fraction of BlockM.
	Jitter float64
}

// N1Like returns a configuration resembling the paper's Denmark network
// N1 in structure — many towns linked by long highway corridors — at
// roughly 1/50 scale so experiments run on a laptop.
func N1Like(seed int64) GenConfig {
	return GenConfig{
		Seed:        seed,
		Width:       64_000,
		Height:      52_000,
		Towns:       13,
		TownMinSide: 14,
		TownMaxSide: 26,
		BlockM:      150,
		HighwaySegM: 900,
		ExtraLinks:  6,
		Jitter:      0.25,
	}
}

// N2Like returns a configuration resembling the paper's Chengdu network
// N2 — one dense urban area, short trips — at reduced scale.
func N2Like(seed int64) GenConfig {
	return GenConfig{
		Seed:        seed,
		Width:       17_000,
		Height:      13_000,
		Towns:       5,
		TownMinSide: 22,
		TownMaxSide: 34,
		BlockM:      130,
		HighwaySegM: 600,
		ExtraLinks:  3,
		Jitter:      0.2,
	}
}

// Tiny returns a small configuration for tests.
func Tiny(seed int64) GenConfig {
	return GenConfig{
		Seed:        seed,
		Width:       8_000,
		Height:      6_000,
		Towns:       3,
		TownMinSide: 5,
		TownMaxSide: 8,
		BlockM:      150,
		HighwaySegM: 500,
		ExtraLinks:  1,
		Jitter:      0.2,
	}
}

// Generate builds a synthetic road network from the configuration.
func Generate(cfg GenConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	centers := placeTownCenters(rng, cfg)
	towns := make([]town, len(centers))
	for i, c := range centers {
		towns[i] = buildTown(b, rng, cfg, c)
	}

	links := intercityLinks(centers, cfg.ExtraLinks)
	for _, l := range links {
		buildCorridor(b, rng, cfg, towns[l[0]], towns[l[1]])
	}
	return b.Build()
}

type town struct {
	center geo.Point
	// border lists access vertices on the town boundary, one per side.
	border []VertexID
	// radius approximates the town extent in meters.
	radius float64
}

func placeTownCenters(rng *rand.Rand, cfg GenConfig) []geo.Point {
	// Poisson-disc-flavoured rejection sampling: towns must keep a
	// minimum separation so corridors are meaningful.
	minSep := math.Sqrt(cfg.Width*cfg.Height/float64(cfg.Towns)) * 0.65
	margin := float64(cfg.TownMaxSide) * cfg.BlockM / 2
	var centers []geo.Point
	for attempts := 0; len(centers) < cfg.Towns && attempts < 10_000; attempts++ {
		p := geo.Pt(
			margin+rng.Float64()*(cfg.Width-2*margin),
			margin+rng.Float64()*(cfg.Height-2*margin),
		)
		ok := true
		for _, c := range centers {
			if c.Dist(p) < minSep {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, p)
		}
	}
	return centers
}

// buildTown lays out an nx×ny urban grid centred at c. Road hierarchy:
// every street is residential except every 3rd line (tertiary), every 6th
// line (secondary) and the central cross (primary).
func buildTown(b *Builder, rng *rand.Rand, cfg GenConfig, c geo.Point) town {
	nx := cfg.TownMinSide + rng.Intn(cfg.TownMaxSide-cfg.TownMinSide+1)
	ny := cfg.TownMinSide + rng.Intn(cfg.TownMaxSide-cfg.TownMinSide+1)
	ox := c.X - float64(nx-1)*cfg.BlockM/2
	oy := c.Y - float64(ny-1)*cfg.BlockM/2

	ids := make([][]VertexID, nx)
	for i := 0; i < nx; i++ {
		ids[i] = make([]VertexID, ny)
		for j := 0; j < ny; j++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.BlockM
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.BlockM
			ids[i][j] = b.AddVertex(geo.Pt(ox+float64(i)*cfg.BlockM+jx, oy+float64(j)*cfg.BlockM+jy))
		}
	}

	lineType := func(k, mid int) RoadType {
		switch {
		case k == mid:
			return Primary
		case k%6 == 0:
			return Secondary
		case k%3 == 0:
			return Tertiary
		default:
			return Residential
		}
	}
	// Horizontal streets: type determined by row j.
	for j := 0; j < ny; j++ {
		t := lineType(j, ny/2)
		for i := 1; i < nx; i++ {
			// Drop a few residential segments to avoid a perfect lattice.
			if t == Residential && rng.Float64() < 0.07 {
				continue
			}
			b.AddRoad(ids[i-1][j], ids[i][j], t)
		}
	}
	// Vertical streets: type determined by column i.
	for i := 0; i < nx; i++ {
		t := lineType(i, nx/2)
		for j := 1; j < ny; j++ {
			if t == Residential && rng.Float64() < 0.07 {
				continue
			}
			b.AddRoad(ids[i][j-1], ids[i][j], t)
		}
	}

	tw := town{center: c, radius: math.Max(float64(nx), float64(ny)) * cfg.BlockM / 2}
	// Access vertices: midpoints of the four sides, preferring the
	// primary cross endpoints so corridors meet arterials.
	tw.border = []VertexID{
		ids[nx/2][0], ids[nx/2][ny-1], ids[0][ny/2], ids[nx-1][ny/2],
	}
	return tw
}

// intercityLinks returns index pairs of towns to connect: a minimum
// spanning tree (Prim) plus the given number of extra shortest
// non-tree links.
func intercityLinks(centers []geo.Point, extra int) [][2]int {
	n := len(centers)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = centers[0].Dist(centers[i])
		from[i] = 0
	}
	var links [][2]int
	used := make(map[[2]int]bool)
	for len(links) < n-1 {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		l := orderPair(from[best], best)
		links = append(links, l)
		used[l] = true
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := centers[best].Dist(centers[i]); d < dist[i] {
					dist[i], from[i] = d, best
				}
			}
		}
	}
	// Extra links: globally shortest unused pairs.
	type cand struct {
		pair [2]int
		d    float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := [2]int{i, j}
			if !used[p] {
				cands = append(cands, cand{p, centers[i].Dist(centers[j])})
			}
		}
	}
	for k := 0; k < extra && len(cands) > 0; k++ {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].d < cands[best].d {
				best = i
			}
		}
		links = append(links, cands[best].pair)
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return links
}

func orderPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// buildCorridor connects two towns with a subdivided highway polyline.
// Long corridors become motorways, medium ones trunks, short ones primary
// roads, so that Fastest and Shortest genuinely disagree on long trips —
// the structural property the paper's evaluation depends on.
func buildCorridor(b *Builder, rng *rand.Rand, cfg GenConfig, a, c town) {
	pa, pc := nearestBorder(b, a, c.center), nearestBorder(b, c, a.center)
	start, end := b.Point(pa), b.Point(pc)
	d := start.Dist(end)

	t := Primary
	switch {
	case d > 12_000:
		t = Motorway
	case d > 4_000:
		t = Trunk
	}

	segs := int(math.Max(1, math.Round(d/cfg.HighwaySegM)))
	// A gentle arc: highways are not straight lines, which keeps DI and
	// TT optima distinct even between the same endpoints.
	perp := geo.Pt(-(end.Y - start.Y), end.X-start.X)
	if n := perp.Norm(); n > 0 {
		perp = perp.Scale(1 / n)
	}
	bulge := d * (0.04 + rng.Float64()*0.06)
	if rng.Intn(2) == 0 {
		bulge = -bulge
	}

	prev := pa
	for i := 1; i < segs; i++ {
		f := float64(i) / float64(segs)
		base := geo.Lerp(start, end, f)
		arc := 4 * f * (1 - f) // parabola peaking mid-corridor
		p := base.Add(perp.Scale(bulge * arc))
		jit := cfg.HighwaySegM * 0.1
		p = p.Add(geo.Pt((rng.Float64()*2-1)*jit, (rng.Float64()*2-1)*jit))
		v := b.AddVertex(p)
		b.AddRoad(prev, v, t)
		prev = v
	}
	b.AddRoad(prev, pc, t)
}

func nearestBorder(b *Builder, t town, toward geo.Point) VertexID {
	best := t.border[0]
	bd := b.Point(best).Dist(toward)
	for _, v := range t.border[1:] {
		if d := b.Point(v).Dist(toward); d < bd {
			best, bd = v, d
		}
	}
	return best
}

// GenerateGrid builds a plain nx×ny grid with the given spacing where all
// streets are the given type. Intended for unit tests.
func GenerateGrid(nx, ny int, spacing float64, t RoadType) *Graph {
	b := NewBuilder()
	ids := make([][]VertexID, nx)
	for i := 0; i < nx; i++ {
		ids[i] = make([]VertexID, ny)
		for j := 0; j < ny; j++ {
			ids[i][j] = b.AddVertex(geo.Pt(float64(i)*spacing, float64(j)*spacing))
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				b.AddRoad(ids[i][j], ids[i+1][j], t)
			}
			if j+1 < ny {
				b.AddRoad(ids[i][j], ids[i][j+1], t)
			}
		}
	}
	return b.Build()
}
