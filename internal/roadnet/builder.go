package roadnet

import (
	"fmt"
	"sort"

	"repro/internal/fuel"
	"repro/internal/geo"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
type Builder struct {
	pts   []geo.Point
	edges []Edge
	fuel  fuel.Model
	seen  map[[2]VertexID]struct{}
}

// NewBuilder returns an empty Builder using the default fuel model for FC
// weights.
func NewBuilder() *Builder {
	return &Builder{fuel: fuel.Default(), seen: make(map[[2]VertexID]struct{})}
}

// AddVertex appends a vertex at p and returns its ID.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	b.pts = append(b.pts, p)
	return VertexID(len(b.pts) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.pts) }

// Point returns the location of an already-added vertex.
func (b *Builder) Point(v VertexID) geo.Point { return b.pts[v] }

// AddEdge adds the directed edge u→v with the given road type, deriving
// length from geometry, travel time from the type's speed limit and fuel
// from the fuel model. Duplicate (u, v) pairs are ignored so generators
// can be sloppy about overlap. Self loops are ignored.
func (b *Builder) AddEdge(u, v VertexID, t RoadType) {
	b.AddEdgeSpeed(u, v, t, t.DefaultSpeedKmh())
}

// AddEdgeSpeed is AddEdge with an explicit speed limit in km/h.
func (b *Builder) AddEdgeSpeed(u, v VertexID, t RoadType, speedKmh float64) {
	if u == v {
		return
	}
	key := [2]VertexID{u, v}
	if _, dup := b.seen[key]; dup {
		return
	}
	b.seen[key] = struct{}{}
	length := b.pts[u].Dist(b.pts[v])
	if length <= 0 {
		length = 1 // degenerate coincident vertices; keep weights positive
	}
	tt := length / (speedKmh / 3.6)
	fc := b.fuel.EdgeLiters(length, speedKmh, t.ExpectedStops())
	b.edges = append(b.edges, Edge{
		From: u, To: v,
		Length:     length,
		TravelTime: tt,
		Fuel:       fc,
		Type:       t,
	})
}

// AddRoad adds edges in both directions between u and v.
func (b *Builder) AddRoad(u, v VertexID, t RoadType) {
	b.AddEdge(u, v, t)
	b.AddEdge(v, u, t)
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{pts: b.pts, edges: b.edges}
	n := len(b.pts)
	m := len(b.edges)

	order := make([]EdgeID, m)
	for i := range order {
		order[i] = EdgeID(i)
	}

	// Out-CSR.
	sort.Slice(order, func(i, j int) bool {
		a, c := b.edges[order[i]], b.edges[order[j]]
		if a.From != c.From {
			return a.From < c.From
		}
		return a.To < c.To
	})
	g.outStart = make([]int32, n+1)
	g.outEdges = make([]EdgeID, m)
	copy(g.outEdges, order)
	for _, e := range b.edges {
		g.outStart[e.From+1]++
	}
	for i := 0; i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
	}

	// In-CSR.
	sort.Slice(order, func(i, j int) bool {
		a, c := b.edges[order[i]], b.edges[order[j]]
		if a.To != c.To {
			return a.To < c.To
		}
		return a.From < c.From
	})
	g.inStart = make([]int32, n+1)
	g.inEdges = make([]EdgeID, m)
	copy(g.inEdges, order)
	for _, e := range b.edges {
		g.inStart[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	return g
}

// Validate performs structural sanity checks on a built graph, returning
// a descriptive error for the first violation found. It is used by tests
// and by cmd/l2rgen after generation.
func Validate(g *Graph) error {
	n := VertexID(g.NumVertices())
	for i, e := range g.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("edge %d: endpoint out of range", i)
		}
		if e.Length <= 0 || e.TravelTime <= 0 || e.Fuel <= 0 {
			return fmt.Errorf("edge %d: non-positive weight (len=%g tt=%g fc=%g)", i, e.Length, e.TravelTime, e.Fuel)
		}
		if e.Type >= NumRoadTypes {
			return fmt.Errorf("edge %d: bad road type %d", i, e.Type)
		}
	}
	var total int
	for v := VertexID(0); v < n; v++ {
		out := g.Out(v)
		total += len(out)
		for _, e := range out {
			if g.Edge(e).From != v {
				return fmt.Errorf("CSR corruption: edge %d listed under vertex %d but From=%d", e, v, g.Edge(e).From)
			}
		}
	}
	if total != g.NumEdges() {
		return fmt.Errorf("CSR corruption: %d out-entries for %d edges", total, g.NumEdges())
	}
	return nil
}
