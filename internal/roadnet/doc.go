// Package roadnet provides the road-network substrate of the
// reproduction: a weighted directed graph G = (V, E, W) whose weight set W
// contains the paper's four functions — distance (DI), travel time (TT),
// fuel consumption (FC) and road type (RT) — plus deterministic synthetic
// generators standing in for the OpenStreetMap extracts used in the paper
// (N1 Denmark, N2 Chengdu). See DESIGN.md for the substitution rationale.
package roadnet
