package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// buildDiamond creates a 4-vertex diamond used by several tests:
//
//	    1
//	  /   \
//	0       3
//	  \   /
//	    2
//
// with the upper route on motorway edges and the lower on residential.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	v0 := b.AddVertex(geo.Pt(0, 0))
	v1 := b.AddVertex(geo.Pt(500, 400))
	v2 := b.AddVertex(geo.Pt(500, -400))
	v3 := b.AddVertex(geo.Pt(1000, 0))
	b.AddRoad(v0, v1, Motorway)
	b.AddRoad(v1, v3, Motorway)
	b.AddRoad(v0, v2, Residential)
	b.AddRoad(v2, v3, Residential)
	g := b.Build()
	if err := Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if len(g.Out(0)) != 2 || len(g.In(3)) != 2 {
		t.Error("adjacency sizes wrong")
	}
	e := g.FindEdge(0, 1)
	if e == NoEdge {
		t.Fatal("edge 0->1 missing")
	}
	ed := g.Edge(e)
	if ed.Type != Motorway {
		t.Errorf("type = %v", ed.Type)
	}
	wantLen := math.Hypot(500, 400)
	if math.Abs(ed.Length-wantLen) > 1e-9 {
		t.Errorf("length = %v want %v", ed.Length, wantLen)
	}
	wantTT := wantLen / (Motorway.DefaultSpeedKmh() / 3.6)
	if math.Abs(ed.TravelTime-wantTT) > 1e-9 {
		t.Errorf("tt = %v want %v", ed.TravelTime, wantTT)
	}
	if ed.Fuel <= 0 {
		t.Error("fuel not positive")
	}
	if g.FindEdge(1, 2) != NoEdge {
		t.Error("phantom edge found")
	}
}

func TestBuilderRejectsDuplicatesAndLoops(t *testing.T) {
	b := NewBuilder()
	v0 := b.AddVertex(geo.Pt(0, 0))
	v1 := b.AddVertex(geo.Pt(100, 0))
	b.AddEdge(v0, v1, Primary)
	b.AddEdge(v0, v1, Residential) // duplicate: ignored
	b.AddEdge(v0, v0, Primary)     // self loop: ignored
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d want 1", g.NumEdges())
	}
	if g.Edge(g.FindEdge(0, 1)).Type != Primary {
		t.Error("first write should win")
	}
}

func TestEdgeWeightAccessors(t *testing.T) {
	g := buildDiamond(t)
	e := g.FindEdge(0, 1)
	ed := g.Edge(e)
	if g.EdgeWeight(e, DI) != ed.Length || g.EdgeWeight(e, TT) != ed.TravelTime || g.EdgeWeight(e, FC) != ed.Fuel {
		t.Error("EdgeWeight mismatch")
	}
}

func TestPathOps(t *testing.T) {
	g := buildDiamond(t)
	p := Path{0, 1, 3}
	if !p.Valid(g) {
		t.Fatal("path should be valid")
	}
	if (Path{0, 3}).Valid(g) {
		t.Error("0-3 direct should be invalid")
	}
	if (Path{}).Valid(g) {
		t.Error("empty path should be invalid")
	}
	wantLen := 2 * math.Hypot(500, 400)
	if math.Abs(p.Length(g)-wantLen) > 1e-9 {
		t.Errorf("path length = %v want %v", p.Length(g), wantLen)
	}
	if c := (Path{0, 3}).Cost(g, DI); !math.IsInf(c, 1) {
		t.Error("disconnected cost should be +Inf")
	}
	edges := p.Edges(g)
	if len(edges) != 2 || edges[0] == NoEdge || edges[1] == NoEdge {
		t.Error("Edges wrong")
	}
	pl := p.Polyline(g)
	if len(pl) != 3 || pl[0] != g.Point(0) {
		t.Error("Polyline wrong")
	}
}

func TestConcat(t *testing.T) {
	a := Path{1, 2, 3}
	b := Path{3, 4}
	c := Concat(a, b)
	if len(c) != 4 || c[3] != 4 {
		t.Fatalf("concat = %v", c)
	}
	// Empty pieces skipped.
	if got := Concat(Path{}, a, Path{}, b); len(got) != 4 {
		t.Errorf("concat with empties = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched concat should panic")
		}
	}()
	Concat(a, Path{9, 10})
}

func TestRoadTypeProperties(t *testing.T) {
	last := math.Inf(1)
	for rt := RoadType(0); rt < NumRoadTypes; rt++ {
		s := rt.DefaultSpeedKmh()
		if s <= 0 || s > last {
			t.Errorf("%v speed %v not decreasing", rt, s)
		}
		last = s
		if rt.ExpectedStops() < 0 {
			t.Errorf("%v negative stops", rt)
		}
		if rt.String() == "" {
			t.Errorf("%v empty name", rt)
		}
	}
	if Motorway.ExpectedStops() >= Residential.ExpectedStops() {
		t.Error("residential should stop more than motorway")
	}
}

func TestGenerateGrid(t *testing.T) {
	g := GenerateGrid(4, 3, 100, Tertiary)
	if g.NumVertices() != 12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// 4x3 grid: horizontal roads 3*3, vertical 4*2, ×2 directions.
	if g.NumEdges() != (3*3+4*2)*2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTinyIsSaneAndConnected(t *testing.T) {
	g := Generate(Tiny(7))
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 50 {
		t.Fatalf("tiny network too small: %d vertices", g.NumVertices())
	}
	assertMostlyConnected(t, g, 0.95)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tiny(11))
	b := Generate(Tiny(11))
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(EdgeID(i)) != b.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := Generate(Tiny(12))
	if c.NumVertices() == a.NumVertices() && c.NumEdges() == a.NumEdges() {
		// Extremely unlikely; counts differing is the cheap signal.
		t.Log("different seeds produced same shape (suspicious but not fatal)")
	}
}

func TestGenerateConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("network generation in -short mode")
	}
	for name, cfg := range map[string]GenConfig{"N1Like": N1Like(1), "N2Like": N2Like(1)} {
		g := Generate(cfg)
		if err := Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() < 1000 {
			t.Errorf("%s: only %d vertices", name, g.NumVertices())
		}
		assertMostlyConnected(t, g, 0.95)
		// Road-type variety: the hierarchy must be present.
		var seen [NumRoadTypes]bool
		for i := 0; i < g.NumEdges(); i++ {
			seen[g.Edge(EdgeID(i)).Type] = true
		}
		for rt := RoadType(0); rt < NumRoadTypes; rt++ {
			if !seen[rt] && rt != Motorway { // tiny maps may lack motorways
				t.Errorf("%s: road type %v absent", name, rt)
			}
		}
	}
}

// assertMostlyConnected checks that a large fraction of vertices lies in
// one weakly connected component.
func assertMostlyConnected(t *testing.T, g *Graph, minFrac float64) {
	t.Helper()
	n := g.NumVertices()
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(v) {
			if w := g.Edge(e).To; !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		for _, e := range g.In(v) {
			if w := g.Edge(e).From; !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if frac := float64(count) / float64(n); frac < minFrac {
		t.Errorf("largest component covers %.2f%% of vertices", 100*frac)
	}
}
