package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// This file implements a simple line-oriented TSV serialization for road
// networks so generated worlds can be persisted, diffed and reloaded:
//
//	V	<id>	<x>	<y>
//	E	<from>	<to>	<length_m>	<tt_s>	<fuel_l>	<type>
//
// Lines starting with '#' and blank lines are ignored. Vertex IDs must
// be dense and ascending starting at 0.

// WriteTSV serializes g.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# learn2route road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		p := g.Point(v)
		fmt.Fprintf(bw, "V\t%d\t%.3f\t%.3f\n", v, p.X, p.Y)
	}
	for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
		ed := g.Edge(e)
		fmt.Fprintf(bw, "E\t%d\t%d\t%.3f\t%.3f\t%.6f\t%d\n",
			ed.From, ed.To, ed.Length, ed.TravelTime, ed.Fuel, ed.Type)
	}
	return bw.Flush()
}

// ReadTSV parses a network written by WriteTSV.
func ReadTSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder()
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		switch fields[0] {
		case "V":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: vertex needs 4 fields, got %d", line, len(fields))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if id != b.NumVertices() {
				return nil, fmt.Errorf("line %d: vertex IDs must be dense ascending (got %d, want %d)", line, id, b.NumVertices())
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			b.AddVertex(geo.Pt(x, y))
		case "E":
			if len(fields) != 7 {
				return nil, fmt.Errorf("line %d: edge needs 7 fields, got %d", line, len(fields))
			}
			var ed Edge
			from, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			ed.From, ed.To = VertexID(from), VertexID(to)
			if ed.Length, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if ed.TravelTime, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if ed.Fuel, err = strconv.ParseFloat(fields[5], 64); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			t, err := strconv.Atoi(fields[6])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			if t < 0 || t >= int(NumRoadTypes) {
				return nil, fmt.Errorf("line %d: bad road type %d", line, t)
			}
			ed.Type = RoadType(t)
			edges = append(edges, ed)
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Edges carry explicit weights, so they bypass the Builder's weight
	// derivation: assemble a graph directly from the parsed records.
	gb := &Builder{pts: b.pts, seen: map[[2]VertexID]struct{}{}}
	n := VertexID(len(b.pts))
	for i, ed := range edges {
		if ed.From < 0 || ed.From >= n || ed.To < 0 || ed.To >= n {
			return nil, fmt.Errorf("edge %d: endpoint out of range", i)
		}
		gb.edges = append(gb.edges, ed)
	}
	out := gb.Build()
	if err := Validate(out); err != nil {
		return nil, err
	}
	return out, nil
}
