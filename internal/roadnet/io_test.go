package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	g := Generate(Tiny(44))
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if g.Point(v).Dist(got.Point(v)) > 0.01 {
			t.Fatalf("vertex %d moved", v)
		}
	}
	for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
		a, b := g.Edge(e), got.Edge(e)
		if a.From != b.From || a.To != b.To || a.Type != b.Type {
			t.Fatalf("edge %d identity mismatch", e)
		}
		if diff := a.Length - b.Length; diff > 0.01 || diff < -0.01 {
			t.Fatalf("edge %d length drift %v", e, diff)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad record":     "X\t1\t2\n",
		"short vertex":   "V\t0\t1\n",
		"sparse ids":     "V\t5\t0\t0\n",
		"short edge":     "V\t0\t0\t0\nE\t0\t0\n",
		"bad type":       "V\t0\t0\t0\nV\t1\t1\t1\nE\t0\t1\t1\t1\t1\t99\n",
		"range endpoint": "V\t0\t0\t0\nE\t0\t7\t1\t1\t1\t0\n",
		"bad float":      "V\t0\tx\t0\n",
	}
	for name, input := range cases {
		if _, err := ReadTSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadTSVIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nV\t0\t0\t0\nV\t1\t100\t0\n# edges\nE\t0\t1\t100\t10\t0.01\t2\n"
	g, err := ReadTSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d/%d", g.NumVertices(), g.NumEdges())
	}
	ed := g.Edge(0)
	if ed.Type != Primary || ed.TravelTime != 10 {
		t.Fatalf("edge fields wrong: %+v", ed)
	}
}
