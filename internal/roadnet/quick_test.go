package roadnet

import (
	"testing"
	"testing/quick"
)

// TestQuickGeneratedNetworksValid: every generator configuration yields
// a graph that passes structural validation for arbitrary seeds.
func TestQuickGeneratedNetworksValid(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 50
		if seed < 0 {
			seed = -seed
		}
		for _, g := range []*Graph{
			Generate(Tiny(seed)),
			GenerateGrid(3+int(seed%5), 3+int(seed%4), 120, Residential),
		} {
			if err := Validate(g); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgeWeightsPositive: every edge of a generated network has
// strictly positive DI/TT/FC weights and an in-range road type — the
// precondition of every shortest-path algorithm in the repository.
func TestQuickEdgeWeightsPositive(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 40
		if seed < 0 {
			seed = -seed
		}
		g := Generate(Tiny(seed))
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			if ed.Length <= 0 || ed.TravelTime <= 0 || ed.Fuel <= 0 {
				return false
			}
			if int(ed.Type) >= int(NumRoadTypes) {
				return false
			}
			// Weight accessor agrees with the struct fields.
			if g.EdgeWeight(EdgeID(e), DI) != ed.Length ||
				g.EdgeWeight(EdgeID(e), TT) != ed.TravelTime ||
				g.EdgeWeight(EdgeID(e), FC) != ed.Fuel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCSRSymmetry: the out-CSR and in-CSR views describe the same
// edge set.
func TestQuickCSRSymmetry(t *testing.T) {
	g := Generate(Tiny(19))
	outCount, inCount := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		outCount += len(g.Out(VertexID(v)))
		inCount += len(g.In(VertexID(v)))
		for _, e := range g.Out(VertexID(v)) {
			if g.Edge(e).From != VertexID(v) {
				t.Fatalf("out-edge %d of %d has From %d", e, v, g.Edge(e).From)
			}
		}
		for _, e := range g.In(VertexID(v)) {
			if g.Edge(e).To != VertexID(v) {
				t.Fatalf("in-edge %d of %d has To %d", e, v, g.Edge(e).To)
			}
		}
	}
	if outCount != g.NumEdges() || inCount != g.NumEdges() {
		t.Fatalf("CSR views cover %d/%d edges of %d", outCount, inCount, g.NumEdges())
	}
}
