package maint

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/traj"
	"repro/internal/wal"
)

// maintCrashSeed and maintCrashTrips parameterize the SIGKILL crash
// test; the parent and its child process must agree on them.
const (
	maintCrashSeed  = 91
	maintCrashTrips = 320
)

// maintCrashFeed derives the deterministic live feed both processes
// use: the bulk the child ingests before its first rebuild, plus the
// extras it feeds between rebuild cycles so cycle 2 folds in enough
// fresh evidence to actually move the model. Trajectories come from
// the seeded simulator only, so both processes see byte-identical
// batches.
func maintCrashFeed(tb testing.TB) (bulk [][]*traj.Trajectory, extras [][]*traj.Trajectory) {
	tb.Helper()
	road := roadnet.Generate(roadnet.Tiny(maintCrashSeed))
	ts := traj.NewSimulator(road, traj.D2Like(maintCrashSeed, maintCrashTrips)).Run()
	cut := len(ts) * 6 / 10
	batches := batchCopies(ts[cut:], 2)
	if len(batches) < 24 {
		tb.Fatalf("feed too small: %d batches", len(batches))
	}
	half := len(batches) / 2
	return batches[:half], batches[half:]
}

func maintCrashOptions(dir string) serve.Options {
	return serve.Options{WALDir: dir, CheckpointEvery: 24, WALSync: wal.SyncAlways, CacheSize: -1}
}

// maintCrashBase builds the child's offline base; the child saves it to
// base.l2r so the parent recovers the *same* base without relying on
// cross-process build determinism.
func maintCrashBase(tb testing.TB) *core.Router {
	tb.Helper()
	road := roadnet.Generate(roadnet.Tiny(maintCrashSeed))
	ts := traj.NewSimulator(road, traj.D2Like(maintCrashSeed, maintCrashTrips)).Run()
	base, err := core.Build(road, ts[:len(ts)*6/10], coreOpt)
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	return base
}

// TestMaintCrashEquivalence is the crash-equivalence acceptance test:
// the parent SIGKILLs a child process somewhere inside a maintenance
// clone-rebuild-publish-checkpoint cycle, then recovers from the
// child's WAL directory and asserts
//
//  1. the recovered engine serves either the pre-rebuild or the
//     post-rebuild snapshot — on every query, consistently, never a
//     hybrid of the two; and
//  2. re-running maintenance on the recovered engine converges to the
//     post-rebuild model regardless of which side recovery landed on
//     (Retransduce is idempotent over the same evidence).
//
// The kill is aimed at the child's *second* rebuild cycle, so the WAL
// directory holds a completed rebuild checkpoint (cycle 1) plus a
// torn-or-complete cycle 2 — the hardest recovery case the maintenance
// pipeline creates.
func TestMaintCrashEquivalence(t *testing.T) {
	if dir := os.Getenv("MAINT_CRASH_DIR"); dir != "" {
		maintCrashChild(t, dir)
		return
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestMaintCrashEquivalence$", "-test.v")
	cmd.Env = append(os.Environ(), "MAINT_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Drive to the kill point: everything up to and including the
	// cycle-2 evidence batch is acknowledged durable, cycle 2's
	// clone-rebuild-publish is (at most) in flight.
	sc := bufio.NewScanner(stdout)
	applied, rebuilt := 0, 0
	killed := false
	var cycle1Start time.Time
	var cycle1 time.Duration
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "applied "):
			applied++
		case line == "rebuild-start 1":
			cycle1Start = time.Now()
		case strings.HasPrefix(line, "rebuilt "):
			rebuilt++
			if line == "rebuilt 1" {
				cycle1 = time.Since(cycle1Start)
			}
		case line == "rebuild-start 2":
			// Aim the kill at a random point across the whole cycle —
			// clone, Retransduce, publish, checkpoint — using cycle 1's
			// wall time as the yardstick. Repeated runs sample every
			// window, including post-checkpoint.
			time.Sleep(time.Duration(rng.Int63n(int64(cycle1*5/4) + 1)))
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			killed = true
		}
		if killed {
			break
		}
	}
	if !killed {
		t.Fatalf("child exited before the second rebuild (applied %d, rebuilt %d)", applied, rebuilt)
	}
	for sc.Scan() { // drain anything that slipped out before the kill landed
		line := sc.Text()
		if strings.HasPrefix(line, "rebuilt ") {
			rebuilt++
		}
	}
	cmd.Wait() // expected "signal: killed"
	if rebuilt < 1 {
		t.Fatalf("child completed %d rebuilds before the kill, want >= 1", rebuilt)
	}
	t.Logf("child killed inside rebuild cycle 2 (applied %d batches, completed %d rebuilds)", applied, rebuilt)

	// Recover from what the child left behind.
	baseBytes, err := os.ReadFile(filepath.Join(dir, "base.l2r"))
	if err != nil {
		t.Fatalf("child's base artifact: %v", err)
	}
	load := func() *core.Router {
		r, err := core.Load(bytes.NewReader(baseBytes))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	recovered, err := serve.NewDurableEngine(load(), maintCrashOptions(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()

	// Replay the child's exact history in-process to produce both legal
	// outcomes: "pre" is the state right before rebuild cycle 2 (bulk +
	// rebuild 1 + the cycle-2 evidence batch), "post" is after cycle 2.
	bulk, extras := maintCrashFeed(t)
	ref := serve.NewEngine(load(), serve.Options{CacheSize: -1})
	rm := Attach(ref, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer rm.Close()
	for _, b := range bulk {
		ref.IngestMatched(b)
	}
	if _, err := rm.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, b := range extras[:len(extras)-1] {
		ref.IngestMatched(b)
	}

	var live []*traj.Trajectory
	for _, b := range bulk {
		live = append(live, b...)
	}
	for _, b := range extras {
		live = append(live, b...)
	}
	ods := queryODs(roadnet.Generate(roadnet.Tiny(maintCrashSeed)), live, 60)

	pre := answersOf(ref, ods)
	if _, err := rm.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	post := answersOf(ref, ods)
	if sameAnswers(pre, post) {
		t.Log("note: pre- and post-rebuild snapshots answer this OD set identically; the hybrid check is one-sided this run")
	}

	got := answersOf(recovered, ods)
	matchesPre, matchesPost := sameAnswers(got, pre), sameAnswers(got, post)
	if !matchesPre && !matchesPost {
		t.Fatal("recovered engine matches neither the pre-rebuild nor the post-rebuild snapshot — hybrid state")
	}
	t.Logf("recovery landed on the %s snapshot", map[bool]string{true: "post-rebuild", false: "pre-rebuild"}[matchesPost])

	// Crash convergence: re-running maintenance on the recovered engine
	// must land on the post-rebuild model from either starting point.
	m2 := Attach(recovered, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m2.Close()
	if _, err := m2.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(answersOf(recovered, ods), post) {
		t.Fatal("re-running maintenance after recovery did not converge to the post-rebuild model")
	}
}

// maintCrashChild is the process the parent kills: serve a durable
// engine with an attached (manual-trigger) maintainer, ingest the bulk
// feed, complete one full rebuild cycle, then announce and start a
// second one — the parent's kill lands inside it.
func maintCrashChild(t *testing.T, dir string) {
	base := maintCrashBase(t)
	f, err := os.Create(filepath.Join(dir, "base.l2r"))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e, err := serve.NewDurableEngine(base, maintCrashOptions(dir))
	if err != nil {
		t.Fatalf("child NewDurableEngine: %v", err)
	}
	m := Attach(e, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m.Close()

	bulk, extras := maintCrashFeed(t)
	ack := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
		os.Stdout.Sync()
		time.Sleep(2 * time.Millisecond)
	}
	for i, b := range bulk {
		e.IngestMatched(b)
		// SyncAlways: the WAL append is on disk before the swap
		// returns, so everything acknowledged here survives the kill.
		ack("applied %d", i+1)
	}
	ack("rebuild-start 1")
	if _, err := m.TriggerNow(context.Background()); err != nil {
		t.Fatalf("child rebuild 1: %v", err)
	}
	ack("rebuilt 1")
	for i, b := range extras[:len(extras)-1] {
		e.IngestMatched(b)
		ack("applied %d", len(bulk)+i+1)
	}
	// No post-ack sleep here: enter the cycle immediately so the
	// parent's kill lands inside clone/rebuild/publish/checkpoint, not
	// in an idle gap before it.
	fmt.Println("rebuild-start 2")
	os.Stdout.Sync()
	if _, err := m.TriggerNow(context.Background()); err != nil {
		t.Fatalf("child rebuild 2: %v", err)
	}
	ack("rebuilt 2")
	e.IngestMatched(extras[len(extras)-1])
	ack("child finished (parent was too slow to kill; still a valid run)")
}
