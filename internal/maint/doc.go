// Package maint keeps a served router converged with its evidence: a
// background maintainer attached to a serve.Engine that accumulates
// the matched trajectories the engine ingests, watches rebuild
// triggers — preference drift against its own post-rebuild baseline,
// evidence volume, a wall-clock interval — and, when one fires, drives
// a clone-rebuild-publish cycle: core.Retransduce re-runs preference
// learning, transduction and B-edge materialization over the full
// accumulated path sets on a copy-on-write clone, off the hot path,
// and the result swaps in through the engine's normal publish path.
//
// The cycle's correctness rests on two contracts proved by the
// convergence and crash tests:
//
//   - Convergence: a router maintained online (incremental ingest
//     batches + Retransduce) equals one rebuilt from scratch over the
//     same region partition and the union of all evidence — path sets,
//     transfer centers and transduction inputs all accumulate
//     canonically.
//   - Crash equivalence: Retransduce is idempotent and the publish is
//     an atomic snapshot swap followed by a checkpoint, so a crash at
//     any point recovers either the old or the new model — never a
//     hybrid — and the WAL-seeded accumulator re-arms the triggers.
//
// Attach wires a maintainer onto one engine; AttachFleet onto every
// tenant of a serve.Fleet. Stats surface through Stats().Maintenance,
// the l2r_maint_* Prometheus family and GET /debug/maint.
package maint
