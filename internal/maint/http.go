package maint

import (
	"net/http"

	"repro/internal/serve"
)

// handler serves GET /debug/maint: the maintainer's full stats. The
// serve layer mounts it on the engine mux (and under /t/{tenant}/ for
// fleets); like every /debug/ path it bypasses the readiness gate.
func (m *Maintainer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			serve.WriteError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		serve.WriteJSON(w, http.StatusOK, map[string]any{
			"maintenance": m.MaintStats(),
		})
	})
}
