package maint

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/region"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/traj"
)

// Config tunes the background maintainer. The zero value is usable:
// drift- and evidence-triggered rebuilds with production-ish
// thresholds, no timer.
type Config struct {
	// Capacity bounds the evidence accumulator — the ring of retained
	// matched paths behind /debug/maint and the recovery re-seed
	// (default 4096). Overflow evicts oldest-first and is counted;
	// eviction never loses model evidence, because the region graph
	// itself accumulates every ingested path exactly.
	Capacity int
	// DriftTV triggers a rebuild when the total-variation distance
	// between the served snapshot's evidence-weighted preference
	// distribution and the maintainer's post-rebuild baseline exceeds
	// it (default 0.25; negative disables the drift trigger).
	DriftTV float64
	// MinEvidence triggers a rebuild when this many trajectories have
	// accumulated since the last rebuild (default 4096; negative
	// disables the evidence trigger).
	MinEvidence int
	// Interval triggers a rebuild this long after the previous one
	// regardless of drift or volume (0 disables the timer — the
	// default; drift and evidence usually fire first).
	Interval time.Duration
	// CheckEvery is the trigger-evaluation cadence (default 2s). Checks
	// are O(T-edges) — a distribution scan, no routing.
	CheckEvery time.Duration
	// Core carries the pipeline options Retransduce re-runs with. Pass
	// the same Region/Transfer/MinConfidence/Workers the router was
	// built with; the zero value gets build's defaults.
	Core core.Options
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.DriftTV == 0 {
		c.DriftTV = 0.25
	}
	if c.MinEvidence == 0 {
		c.MinEvidence = 4096
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 2 * time.Second
	}
	return c
}

// baseline pins the model state the triggers measure against: the
// region graph and T-edge pair set of the snapshot published by the
// last rebuild (or present at attach), and when it was captured.
type baseline struct {
	rg    *region.Graph
	pairs map[[2]int]bool
	at    time.Time
}

// lastRebuild records the outcome of the most recent cycle.
type lastRebuild struct {
	trigger     string
	stats       core.RetransduceStats
	tedgesAdded int
	at          time.Time
}

// driftCache memoizes the drift gauge per (generation, baseline) so
// scrape-frequency readers and the trigger loop share one distribution
// scan per published snapshot.
type driftCache struct {
	gen  uint64
	base *baseline
	tv   float64
}

// Maintainer is the engine-attached background maintenance pipeline.
// Create one with Attach; stop it with Close. All methods are safe for
// concurrent use.
type Maintainer struct {
	eng *serve.Engine
	cfg Config

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// rebuildMu serializes clone-rebuild-publish cycles between the
	// trigger loop and TriggerNow. Never held together with mu.
	rebuildMu sync.Mutex

	// mu guards the accumulator. Lock order: the engine's write lock
	// (when held) is always outer — OfferTrajectories and Published run
	// under it; nothing here acquires engine locks while holding mu.
	mu       sync.Mutex
	ring     []roadnet.Path // retained paths since the last publish, oldest first
	evidence int            // trajectories accumulated since the last publish
	seeded   int            // of which re-seeded from WAL recovery at attach

	accumulated atomic.Uint64
	evicted     atomic.Uint64
	rebuilds    atomic.Uint64
	failures    atomic.Uint64

	base  atomic.Pointer[baseline]
	last  atomic.Pointer[lastRebuild]
	drift atomic.Pointer[driftCache]
}

// Attach wires a background maintainer onto e: the engine's write path
// offers it every ingested batch, Stats()/metrics gain the Maintenance
// section and the l2r_maint_* family, GET /debug/maint serves its
// state, and a background loop evaluates the rebuild triggers. On a
// durable engine the accumulator is seeded from the batches start-up
// recovery replayed — evidence that was ingested but had not yet
// counted toward a rebuild when the previous process died, so a crash
// re-arms the triggers instead of silently forgetting it. Call Close
// at shutdown to stop the loop.
func Attach(e *serve.Engine, cfg Config) *Maintainer {
	cfg = cfg.withDefaults()
	m := &Maintainer{
		eng:  e,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	m.rebase(e.Snapshot())
	for _, b := range e.TakeRecoveredBatches() {
		for _, t := range b.Trajs {
			if p := drivenPath(t); p != nil {
				m.retain(p)
				m.evidence++
				m.seeded++
			}
		}
	}
	e.AttachMaintenance(m.handler(), m)
	go m.loop()
	return m
}

// Close stops the trigger loop. Idempotent; a rebuild already in
// flight finishes first.
func (m *Maintainer) Close() {
	m.closeOnce.Do(func() { close(m.stop) })
	<-m.done
}

// rebase pins a fresh trigger baseline on r's published state.
func (m *Maintainer) rebase(r *core.Router) {
	m.base.Store(&baseline{
		rg:    r.RegionGraph(),
		pairs: r.TEdgePairs(),
		at:    time.Now(),
	})
}

// drivenPath returns the trajectory's matched road path (falling back
// to ground truth), or nil when it is too short to be evidence.
func drivenPath(t *traj.Trajectory) roadnet.Path {
	p := t.Matched
	if len(p) < 2 {
		p = t.Truth
	}
	if len(p) < 2 {
		return nil
	}
	return p
}

// OfferTrajectories implements serve.MaintSource: count the batch
// toward the evidence trigger and retain bounded copies. Runs on the
// engine's write path under its write lock — O(batch) copying, no
// waits, matching QualitySource's contract.
func (m *Maintainer) OfferTrajectories(ts []*traj.Trajectory) {
	m.mu.Lock()
	for _, t := range ts {
		p := drivenPath(t)
		if p == nil {
			continue
		}
		m.accumulated.Add(1)
		m.evidence++
		m.retain(append(roadnet.Path(nil), p...))
	}
	m.mu.Unlock()
}

// retain appends one path to the bounded ring, evicting oldest-first
// on overflow. Caller holds mu (or is still single-threaded in Attach).
func (m *Maintainer) retain(p roadnet.Path) {
	if len(m.ring) >= m.cfg.Capacity {
		copy(m.ring, m.ring[1:])
		m.ring[len(m.ring)-1] = p
		m.evicted.Add(1)
		return
	}
	m.ring = append(m.ring, p)
}

// Published implements serve.MaintSource: a new snapshot swapped in —
// this maintainer's own rebuild landing, or an external Publish. Either
// way the accumulated-but-unrebuilt window closes: rebase the trigger
// baseline on the published model and reset the accumulator (a rebuild
// incorporated the evidence; an external artifact superseded it). Runs
// under the engine's write lock and must not call back into the engine.
func (m *Maintainer) Published(r *core.Router) {
	m.rebase(r)
	m.mu.Lock()
	m.ring = nil
	m.evidence = 0
	m.seeded = 0
	m.mu.Unlock()
}

// driftTV returns the drift gauge for the served snapshot, computing
// the distribution scan at most once per (generation, baseline).
func (m *Maintainer) driftTV() float64 {
	gen := m.eng.Generation()
	base := m.base.Load()
	if c := m.drift.Load(); c != nil && c.gen == gen && c.base == base {
		return c.tv
	}
	tv := quality.DriftTV(base.rg, m.eng.Snapshot().RegionGraph())
	m.drift.Store(&driftCache{gen: gen, base: base, tv: tv})
	return tv
}

// loop evaluates the triggers every CheckEvery and runs a rebuild when
// one fires; exits on Close.
func (m *Maintainer) loop() {
	defer close(m.done)
	tick := time.NewTicker(m.cfg.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			if trigger := m.check(); trigger != "" {
				_, _ = m.rebuildOnce(context.Background(), trigger)
			}
		}
	}
}

// check returns the name of the first trigger that fires, or "".
func (m *Maintainer) check() string {
	m.mu.Lock()
	evidence := m.evidence
	m.mu.Unlock()
	if evidence == 0 {
		// Nothing ingested since the last publish: drift cannot have
		// moved and a rebuild would be a no-op re-derivation.
		return ""
	}
	if m.cfg.DriftTV >= 0 && m.driftTV() > m.cfg.DriftTV {
		return "drift"
	}
	if m.cfg.MinEvidence >= 0 && evidence >= m.cfg.MinEvidence {
		return "evidence"
	}
	if m.cfg.Interval > 0 && time.Since(m.base.Load().at) >= m.cfg.Interval {
		return "timer"
	}
	return ""
}

// TriggerNow runs one clone-rebuild-publish cycle immediately,
// regardless of trigger state — operational tooling and the benchmark
// harness's maintenance phase call it. Serialized with the trigger
// loop's own rebuilds.
func (m *Maintainer) TriggerNow(ctx context.Context) (core.RetransduceStats, error) {
	return m.rebuildOnce(ctx, "manual")
}

// rebuildOnce drives one cycle through the engine: clone the served
// router, Retransduce the clone off the hot path, publish. The engine's
// Published callback (under its write lock, before the swap returns)
// rebases the baseline and resets the accumulator, so the cycle's
// bookkeeping is atomic with the swap itself.
func (m *Maintainer) rebuildOnce(ctx context.Context, trigger string) (core.RetransduceStats, error) {
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	before := m.base.Load().pairs
	var st core.RetransduceStats
	added := 0
	_, err := m.eng.RebuildSnapshot(ctx, func(r *core.Router) error {
		st = r.Retransduce(m.cfg.Core)
		for p := range r.TEdgePairs() {
			if !before[p] {
				added++
			}
		}
		return nil
	})
	if err != nil {
		m.failures.Add(1)
		return st, err
	}
	m.rebuilds.Add(1)
	m.last.Store(&lastRebuild{trigger: trigger, stats: st, tedgesAdded: added, at: time.Now()})
	return st, nil
}

// MaintStats implements serve.MaintSource.
func (m *Maintainer) MaintStats() serve.MaintStats {
	ms := serve.MaintStats{
		Capacity:        m.cfg.Capacity,
		Accumulated:     m.accumulated.Load(),
		Evicted:         m.evicted.Load(),
		DriftThreshold:  m.cfg.DriftTV,
		MinEvidence:     m.cfg.MinEvidence,
		Interval:        m.cfg.Interval,
		Rebuilds:        m.rebuilds.Load(),
		RebuildFailures: m.failures.Load(),
	}
	m.mu.Lock()
	ms.Retained = len(m.ring)
	ms.EvidenceSinceRebuild = m.evidence
	ms.RecoverySeeded = m.seeded
	m.mu.Unlock()
	ms.DriftTV = m.driftTV()
	ms.SinceRebuild = time.Since(m.base.Load().at)
	if lr := m.last.Load(); lr != nil {
		ms.LastTrigger = lr.trigger
		ms.LastRebuildTime = lr.stats.Elapsed
		ms.LastTEdgesAdded = lr.tedgesAdded
		ms.LastLearnedPrefs = lr.stats.LearnedPrefs
		ms.LastTransferred = lr.stats.Transferred
		ms.LastNull = lr.stats.Null
		ms.LastMetricsCustomized = lr.stats.MetricsCustomized
	}
	return ms
}
