package maint

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/traj"
)

// coreOpt is the pipeline configuration every maint test builds and
// maintains with — Retransduce must re-run with the build's options for
// the convergence contract to hold.
var coreOpt = core.Options{SkipMapMatching: true}

// maintWorld generates a deterministic world: the seeded road network
// and the full simulated trajectory set. Callers regenerate it (same
// seed) when they need a pristine copy of the same trajectories —
// Build and IngestMatched both mutate the trajectories they are given.
func maintWorld(tb testing.TB, seed int64, trips int) (*roadnet.Graph, []*traj.Trajectory) {
	tb.Helper()
	road := roadnet.Generate(roadnet.Tiny(seed))
	ts := traj.NewSimulator(road, traj.D2Like(seed, trips)).Run()
	if len(ts) < 20 {
		tb.Fatalf("simulator made only %d trips", len(ts))
	}
	return road, ts
}

// batchCopies splits live trajectories into ingest batches of n,
// copying each so the source set stays pristine for reference builds.
func batchCopies(live []*traj.Trajectory, n int) [][]*traj.Trajectory {
	var batches [][]*traj.Trajectory
	for i := 0; i < len(live); i += n {
		j := i + n
		if j > len(live) {
			j = len(live)
		}
		var b []*traj.Trajectory
		for k, t := range live[i:j] {
			b = append(b, &traj.Trajectory{ID: i + k, Driver: t.Driver, Depart: t.Depart, Peak: t.Peak, Truth: t.Truth})
		}
		batches = append(batches, b)
	}
	return batches
}

// queryODs samples n OD pairs: trajectory endpoints first (guaranteed
// reachable, trajectory-covered), then seeded-random vertex pairs that
// exercise B-edge and fallback routing.
func queryODs(road *roadnet.Graph, ts []*traj.Trajectory, n int) [][2]roadnet.VertexID {
	var ods [][2]roadnet.VertexID
	for _, t := range ts {
		if len(ods) >= n*3/4 {
			break
		}
		ods = append(ods, [2]roadnet.VertexID{t.Source(), t.Destination()})
	}
	rng := rand.New(rand.NewSource(7))
	for len(ods) < n {
		s := roadnet.VertexID(rng.Intn(road.NumVertices()))
		d := roadnet.VertexID(rng.Intn(road.NumVertices()))
		if s != d {
			ods = append(ods, [2]roadnet.VertexID{s, d})
		}
	}
	return ods
}

// buildMaintEngine builds the offline 60% prefix into a router, wraps
// it in an engine, and attaches a manual-only maintainer (CheckEvery an
// hour out, so only TriggerNow rebuilds). Returns the engine, the
// maintainer, and the held-out live trajectories.
func buildMaintEngine(tb testing.TB, seed int64, trips int, cfg Config) (*serve.Engine, *Maintainer, *roadnet.Graph, []*traj.Trajectory) {
	tb.Helper()
	road, ts := maintWorld(tb, seed, trips)
	cut := len(ts) * 6 / 10
	base, err := core.Build(road, ts[:cut], coreOpt)
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	e := serve.NewEngine(base, serve.Options{CacheSize: -1})
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = time.Hour
	}
	cfg.Core = coreOpt
	m := Attach(e, cfg)
	return e, m, road, ts[cut:]
}

// TestMaintConvergenceMatchesRebuild is the convergence property test:
// trajectories streamed through a live engine and folded in by the
// maintenance pipeline must yield the same router a from-scratch
// offline build over the same partition and the union of all evidence
// produces — identical T-edge pair sets, identical per-pair preference
// state, and identical answers on 200+ OD queries.
func TestMaintConvergenceMatchesRebuild(t *testing.T) {
	const seed, trips = 47, 600
	e, m, road, live := buildMaintEngine(t, seed, trips, Config{})
	defer m.Close()

	for _, b := range batchCopies(live, 16) {
		e.IngestMatched(b)
	}
	st, err := m.TriggerNow(context.Background())
	if err != nil {
		t.Fatalf("TriggerNow: %v", err)
	}
	if st.Regions == 0 || st.TEdges == 0 {
		t.Fatalf("rebuild saw an empty region graph: %+v", st)
	}
	maintained := e.Snapshot()

	// The reference: rebuild from scratch over the maintained router's
	// own partition and a pristine regeneration of every trajectory it
	// ever saw (training + streamed).
	roadRef, tsRef := maintWorld(t, seed, trips)
	ref, err := core.BuildWithRegions(roadRef, maintained.RegionGraph().Regions, tsRef, coreOpt)
	if err != nil {
		t.Fatalf("BuildWithRegions: %v", err)
	}

	mp, rp := maintained.TEdgePairs(), ref.TEdgePairs()
	if len(mp) != len(rp) {
		t.Fatalf("T-edge pair sets differ: maintained %d, rebuilt %d", len(mp), len(rp))
	}
	for p := range mp {
		if !rp[p] {
			t.Fatalf("maintained T-edge %v missing from the from-scratch rebuild", p)
		}
	}

	mg, rg := maintained.RegionGraph(), ref.RegionGraph()
	if len(mg.Edges) != len(rg.Edges) {
		t.Fatalf("edge counts differ: maintained %d, rebuilt %d", len(mg.Edges), len(rg.Edges))
	}
	for _, me := range mg.Edges {
		re := rg.FindEdge(me.R1, me.R2)
		if re == nil {
			t.Fatalf("maintained edge %d-%d missing from rebuild", me.R1, me.R2)
		}
		// Pref is only meaningful under HasPref: an edge that lost (or
		// never reached) confidence keeps a stale Pref value that no
		// routing path reads.
		if me.Kind != re.Kind || me.HasPref != re.HasPref || (me.HasPref && me.Pref != re.Pref) {
			t.Fatalf("edge %d-%d diverged: maintained kind=%v haspref=%v pref=%v, rebuilt kind=%v haspref=%v pref=%v",
				me.R1, me.R2, me.Kind, me.HasPref, me.Pref, re.Kind, re.HasPref, re.Pref)
		}
	}

	ods := queryODs(road, tsRef, 220)
	if len(ods) < 200 {
		t.Fatalf("only %d OD pairs sampled, need 200+", len(ods))
	}
	for _, od := range ods {
		got, _ := e.Route(od[0], od[1])
		want := ref.Route(od[0], od[1])
		if got.Category != want.Category || len(got.Path) != len(want.Path) {
			t.Fatalf("%d->%d differs: maintained %v/%d hops, rebuilt %v/%d hops",
				od[0], od[1], got.Category, len(got.Path), want.Category, len(want.Path))
		}
		for i := range got.Path {
			if got.Path[i] != want.Path[i] {
				t.Fatalf("%d->%d differs at hop %d", od[0], od[1], i)
			}
		}
	}
}

// TestMaintRetransduceIdempotent: a second rebuild over unchanged
// evidence must not move the model — the fixed point the crash test's
// "re-run maintenance after recovery" step relies on.
func TestMaintRetransduceIdempotent(t *testing.T) {
	e, m, road, live := buildMaintEngine(t, 49, 400, Config{})
	defer m.Close()
	for _, b := range batchCopies(live, 16) {
		e.IngestMatched(b)
	}
	if _, err := m.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	ods := queryODs(road, live, 120)
	first := answersOf(e, ods)
	if _, err := m.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if second := answersOf(e, ods); !sameAnswers(first, second) {
		t.Fatal("a no-new-evidence rebuild changed route answers")
	}
}

// answersOf snapshots an engine's answers over a fixed OD set.
func answersOf(e *serve.Engine, ods [][2]roadnet.VertexID) []core.RouteResult {
	out := make([]core.RouteResult, len(ods))
	for i, od := range ods {
		out[i], _ = e.Route(od[0], od[1])
	}
	return out
}

func sameAnswers(a, b []core.RouteResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Category != b[i].Category || len(a[i].Path) != len(b[i].Path) {
			return false
		}
		for j := range a[i].Path {
			if a[i].Path[j] != b[i].Path[j] {
				return false
			}
		}
	}
	return true
}

// TestMaintEvidenceTrigger: the background loop fires a rebuild once
// MinEvidence trajectories accumulate, and stays quiet afterwards while
// nothing new is ingested.
func TestMaintEvidenceTrigger(t *testing.T) {
	e, m, _, live := buildMaintEngine(t, 53, 300, Config{
		CheckEvery:  2 * time.Millisecond,
		MinEvidence: 4,
		DriftTV:     -1, // evidence only
	})
	defer m.Close()

	e.IngestMatched(batchCopies(live, 8)[0])
	waitFor(t, "evidence-triggered rebuild", func() bool { return m.MaintStats().Rebuilds >= 1 })
	st := m.MaintStats()
	if st.LastTrigger != "evidence" {
		t.Fatalf("LastTrigger = %q, want evidence", st.LastTrigger)
	}
	if st.EvidenceSinceRebuild != 0 {
		t.Fatalf("evidence counter = %d after rebuild, want 0", st.EvidenceSinceRebuild)
	}

	// Quiescence: with no new evidence the trigger must not re-fire.
	got := m.MaintStats().Rebuilds
	time.Sleep(50 * time.Millisecond)
	if now := m.MaintStats().Rebuilds; now != got {
		t.Fatalf("rebuilds advanced %d -> %d with no new evidence", got, now)
	}
}

// TestMaintTimerTrigger: with drift and evidence triggers disabled, the
// interval timer alone rebuilds — but only once at least one trajectory
// has arrived since the last publish.
func TestMaintTimerTrigger(t *testing.T) {
	e, m, _, live := buildMaintEngine(t, 53, 300, Config{
		CheckEvery:  2 * time.Millisecond,
		MinEvidence: -1,
		DriftTV:     -1,
		Interval:    10 * time.Millisecond,
	})
	defer m.Close()

	time.Sleep(40 * time.Millisecond)
	if n := m.MaintStats().Rebuilds; n != 0 {
		t.Fatalf("timer fired %d rebuilds with zero evidence", n)
	}
	e.IngestMatched(batchCopies(live, 4)[0])
	waitFor(t, "timer-triggered rebuild", func() bool { return m.MaintStats().Rebuilds >= 1 })
	if lt := m.MaintStats().LastTrigger; lt != "timer" {
		t.Fatalf("LastTrigger = %q, want timer", lt)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMaintAccumulatorBounds: the evidence ring honors Capacity,
// evicting oldest-first and counting what it dropped; eviction is
// bookkeeping only — the region graph holds the full evidence.
func TestMaintAccumulatorBounds(t *testing.T) {
	e, m, _, live := buildMaintEngine(t, 59, 300, Config{Capacity: 4})
	defer m.Close()

	e.IngestMatched(batchCopies(live, 10)[0])
	st := m.MaintStats()
	if st.Retained != 4 || st.Capacity != 4 {
		t.Fatalf("retained %d/%d, want 4/4", st.Retained, st.Capacity)
	}
	if st.Evicted != 6 || st.Accumulated != 10 {
		t.Fatalf("evicted %d accumulated %d, want 6/10", st.Evicted, st.Accumulated)
	}
	if st.EvidenceSinceRebuild != 10 {
		t.Fatalf("evidence %d, want 10 (eviction must not shrink the trigger counter)", st.EvidenceSinceRebuild)
	}
}

// TestMaintEndpointAndStats: /debug/maint is 404 until a maintainer is
// attached, then serves the full stats block; Stats().Maintenance and
// /metrics follow the same lifecycle.
func TestMaintEndpointAndStats(t *testing.T) {
	road, ts := maintWorld(t, 61, 300)
	cut := len(ts) * 6 / 10
	base, err := core.Build(road, ts[:cut], coreOpt)
	if err != nil {
		t.Fatal(err)
	}
	e := serve.NewEngine(base, serve.Options{CacheSize: -1})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/maint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unattached /debug/maint = %d, want 404", resp.StatusCode)
	}
	if e.Stats().Maintenance != nil {
		t.Fatal("Stats().Maintenance set before attach")
	}

	m := Attach(e, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m.Close()
	e.IngestMatched(batchCopies(ts[cut:], 8)[0])

	resp, err = http.Get(srv.URL + "/debug/maint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/maint = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Maintenance serve.MaintStats `json:"maintenance"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Maintenance.Retained != 8 || body.Maintenance.EvidenceSinceRebuild != 8 {
		t.Fatalf("endpoint stats retained=%d evidence=%d, want 8/8",
			body.Maintenance.Retained, body.Maintenance.EvidenceSinceRebuild)
	}

	st := e.Stats()
	if st.Maintenance == nil {
		t.Fatal("Stats().Maintenance missing after attach")
	}
	if st.Maintenance.Accumulated != 8 {
		t.Fatalf("Stats().Maintenance.Accumulated = %d, want 8", st.Maintenance.Accumulated)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	sb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"l2r_maint_retained", "l2r_maint_rebuilds_total", "l2r_maint_drift_tv"} {
		if !strings.Contains(string(sb), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestMaintRecoverySeeding: evidence that was WAL-durable but not yet
// rebuilt into the model when the process died must re-seed the
// accumulator on the next attach, so the triggers re-arm instead of
// silently forgetting it.
func TestMaintRecoverySeeding(t *testing.T) {
	_, ts := maintWorld(t, 67, 300)
	cut := len(ts) * 6 / 10
	build := func() *core.Router {
		roadB, tsB := maintWorld(t, 67, 300)
		r, err := core.Build(roadB, tsB[:cut], coreOpt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	dir := t.TempDir()
	opt := serve.Options{WALDir: dir, CheckpointEvery: -1, CacheSize: -1}
	e1, err := serve.NewDurableEngine(build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	batches := batchCopies(ts[cut:], 8)[:3]
	for _, b := range batches {
		e1.IngestMatched(b)
	}
	e1.Close() // no checkpoint: the WAL tail holds all 24 trajectories

	e2, err := serve.NewDurableEngine(build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	m := Attach(e2, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m.Close()

	st := m.MaintStats()
	if st.RecoverySeeded != 24 || st.Retained != 24 || st.EvidenceSinceRebuild != 24 {
		t.Fatalf("recovery seeded %d retained %d evidence %d, want 24/24/24: %+v",
			st.RecoverySeeded, st.Retained, st.EvidenceSinceRebuild, st)
	}

	// The seeded evidence counts toward the next rebuild; the rebuild
	// consumes it.
	if _, err := m.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = m.MaintStats()
	if st.RecoverySeeded != 0 || st.EvidenceSinceRebuild != 0 {
		t.Fatalf("accumulator not reset after rebuild: %+v", st)
	}
}

// TestMaintExternalPublishResets: an external artifact publish
// supersedes the accumulated evidence window — the maintainer rebases
// its baseline on the published router and clears the accumulator.
func TestMaintExternalPublishResets(t *testing.T) {
	e, m, _, live := buildMaintEngine(t, 71, 300, Config{})
	defer m.Close()
	e.IngestMatched(batchCopies(live, 8)[0])
	if st := m.MaintStats(); st.EvidenceSinceRebuild != 8 {
		t.Fatalf("evidence = %d, want 8", st.EvidenceSinceRebuild)
	}
	e.Publish(e.Snapshot().DeepClone())
	if st := m.MaintStats(); st.EvidenceSinceRebuild != 0 || st.Retained != 0 {
		t.Fatalf("external publish did not reset the accumulator: %+v", st)
	}
}

// TestMaintSoakConcurrentRebuilds is the mid-traffic publish soak (run
// under -race in CI): routers, an ingester, a stats scraper and a
// maintenance loop hammer one engine; every query must come back with
// a non-empty path — a snapshot swap may never drop a query.
func TestMaintSoakConcurrentRebuilds(t *testing.T) {
	road, ts := maintWorld(t, 73, 400)
	cut := len(ts) * 6 / 10
	base, err := core.Build(road, ts[:cut], coreOpt)
	if err != nil {
		t.Fatal(err)
	}
	e := serve.NewEngine(base, serve.Options{})
	m := Attach(e, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m.Close()

	ods := queryODs(road, ts[:cut], 64)
	startGen := e.Generation()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var routed, dropped atomic.Uint64

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				od := ods[rng.Intn(len(ods))]
				res, _ := e.Route(od[0], od[1])
				routed.Add(1)
				if len(res.Path) == 0 {
					dropped.Add(1)
				}
			}
		}(int64(i))
	}

	wg.Add(1)
	go func() { // ingester: recycle the live feed in small batches
		defer wg.Done()
		live := ts[cut:]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := (i * 4) % len(live)
			hi := lo + 4
			if hi > len(live) {
				hi = len(live)
			}
			e.IngestMatched(batchCopies(live[lo:hi], 4)[0])
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Add(1)
	go func() { // maintenance loop: rebuild as fast as the engine allows
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.TriggerNow(context.Background()); err != nil {
				t.Errorf("TriggerNow: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Stats()
			_ = m.MaintStats()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if routed.Load() == 0 {
		t.Fatal("soak routed nothing")
	}
	if dropped.Load() != 0 {
		t.Fatalf("%d of %d queries dropped during maintenance publishes", dropped.Load(), routed.Load())
	}
	if m.MaintStats().Rebuilds == 0 {
		t.Fatal("soak completed no rebuilds")
	}
	if e.Generation() == startGen {
		t.Fatal("no snapshot was published during the soak")
	}
	t.Logf("soak: %d routes, %d rebuilds, generation %d -> %d",
		routed.Load(), m.MaintStats().Rebuilds, startGen, e.Generation())
}

// TestMaintOverheadBudget gates the serving-latency cost of a
// background rebuild: p99 route latency with a maintenance rebuild
// loop running must stay within 10% of the undisturbed p99. The
// rebuild runs under the write lock, never the read path, so the only
// legitimate cost is memory traffic — not blocking.
func TestMaintOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("latency budget needs full samples")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// With a single CPU the rebuild goroutine and the measured
		// router share one core and the test measures the scheduler,
		// not the engine. The contention this test gates (lock or
		// cache-line interference on the read path) needs a spare core.
		t.Skip("needs >= 2 CPUs to time routing against a concurrent rebuild")
	}

	road, ts := maintWorld(t, 79, 400)
	cut := len(ts) * 6 / 10
	base, err := core.Build(road, ts[:cut], coreOpt)
	if err != nil {
		t.Fatal(err)
	}
	e := serve.NewEngine(base, serve.Options{CacheSize: -1})
	m := Attach(e, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer m.Close()
	for _, b := range batchCopies(ts[cut:], 16) {
		e.IngestMatched(b)
	}
	ods := queryODs(road, ts[:cut], 64)

	const samples = 1500
	p99 := func(rebuilding bool) time.Duration {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if rebuilding {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := m.TriggerNow(context.Background()); err != nil {
						return
					}
				}
			}()
		}
		lat := make([]time.Duration, samples)
		rng := rand.New(rand.NewSource(11))
		for i := range lat {
			od := ods[rng.Intn(len(ods))]
			start := time.Now()
			e.Route(od[0], od[1])
			lat[i] = time.Since(start)
		}
		close(stop)
		wg.Wait()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[samples*99/100]
	}

	// Three attempts, best ratio wins: a single noisy run (GC pause,
	// scheduler hiccup) must not fail the gate, a systematic regression
	// fails all three.
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		baseline := p99(false)
		loaded := p99(true)
		ratio := float64(loaded) / float64(baseline)
		t.Logf("attempt %d: baseline p99 %v, during-rebuild p99 %v (ratio %.3f)", attempt, baseline, loaded, ratio)
		if best == 0 || ratio < best {
			best = ratio
		}
		if best <= 1.10 {
			return
		}
	}
	t.Fatalf("rebuild added more than 10%% to p99 route latency in all attempts (best ratio %.3f)", best)
}

// TestMaintFleetAttach: AttachFleet covers current and future tenants,
// chains the existing OnCreate hook, and mounts each tenant's
// /t/{name}/debug/maint endpoint.
func TestMaintFleetAttach(t *testing.T) {
	buildFor := func(seed int64) *core.Router {
		road, ts := maintWorld(t, seed, 300)
		r, err := core.Build(road, ts[:len(ts)*6/10], coreOpt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	fleet := serve.NewFleet(serve.Options{CacheSize: -1})
	defer fleet.Close()
	var hookCalls atomic.Uint64
	fleet.OnCreate = func(string, *serve.Engine) { hookCalls.Add(1) }
	if _, err := fleet.Add("acity", buildFor(83)); err != nil {
		t.Fatal(err)
	}

	fm := AttachFleet(fleet, Config{CheckEvery: time.Hour, Core: coreOpt})
	defer fm.Close()
	if _, ok := fm.Get("acity"); !ok {
		t.Fatal("existing tenant did not get a maintainer")
	}

	// A tenant created after attach gets one too, and the previous
	// OnCreate hook still runs.
	if _, err := fleet.Add("bcity", buildFor(89)); err != nil {
		t.Fatal(err)
	}
	if _, ok := fm.Get("bcity"); !ok {
		t.Fatal("late tenant did not get a maintainer")
	}
	if hookCalls.Load() != 2 { // once per Add: AttachFleet must keep calling the prior hook
		t.Fatalf("chained OnCreate ran %d times, want 2", hookCalls.Load())
	}

	srv := httptest.NewServer(fleet.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/t/acity/debug/maint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/t/acity/debug/maint = %d, want 200", resp.StatusCode)
	}
}
