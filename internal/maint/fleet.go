package maint

import (
	"sync"

	"repro/internal/serve"
)

// FleetMaintainers tracks the per-tenant maintainers AttachFleet
// creates.
type FleetMaintainers struct {
	cfg Config
	mu  sync.Mutex
	ms  map[string]*Maintainer
}

// AttachFleet attaches a background maintainer to every current and
// future tenant of f, chaining any Fleet.OnCreate hook already
// installed (so it composes with stream.AttachFleet and
// quality.AttachFleet in any order). Call Close on the result at
// shutdown.
func AttachFleet(f *serve.Fleet, cfg Config) *FleetMaintainers {
	fm := &FleetMaintainers{cfg: cfg, ms: make(map[string]*Maintainer)}
	prev := f.OnCreate
	f.OnCreate = func(name string, e *serve.Engine) {
		if prev != nil {
			prev(name, e)
		}
		fm.attach(name, e)
	}
	for _, name := range f.Names() {
		if e, ok := f.Get(name); ok {
			fm.attach(name, e)
		}
	}
	return fm
}

func (fm *FleetMaintainers) attach(name string, e *serve.Engine) {
	m := Attach(e, fm.cfg)
	fm.mu.Lock()
	old := fm.ms[name]
	fm.ms[name] = m
	fm.mu.Unlock()
	if old != nil {
		old.Close() // tenant re-created under the same name
	}
}

// Get returns the named tenant's maintainer.
func (fm *FleetMaintainers) Get(name string) (*Maintainer, bool) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	m, ok := fm.ms[name]
	return m, ok
}

// Close stops every attached maintainer.
func (fm *FleetMaintainers) Close() {
	fm.mu.Lock()
	all := make([]*Maintainer, 0, len(fm.ms))
	for _, m := range fm.ms {
		all = append(all, m)
	}
	fm.ms = make(map[string]*Maintainer)
	fm.mu.Unlock()
	for _, m := range all {
		m.Close()
	}
}
