// Package sparse implements the small linear-algebra kernel required by
// the preference-transfer step (paper Section V-B): symmetric sparse
// matrices in CSR form, the unnormalized graph Laplacian, and two
// iterative solvers for Eq. 3 — conjugate gradient (the default) and
// Jacobi (kept for the ablation bench, matching the solvers the paper
// cites).
package sparse
