package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Coord is one (row, col, value) triplet used to assemble a matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// Matrix is an immutable CSR sparse matrix.
type Matrix struct {
	n      int
	rowPtr []int32
	colIdx []int32
	vals   []float64
}

// New assembles an n×n CSR matrix from triplets. Duplicate (row, col)
// entries are summed. Entries with zero value are dropped.
func New(n int, coords []Coord) *Matrix {
	sorted := make([]Coord, 0, len(coords))
	for _, c := range coords {
		if c.Val != 0 {
			sorted = append(sorted, c)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &Matrix{n: n, rowPtr: make([]int32, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, int32(sorted[i].Col))
			m.vals = append(m.vals, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// Dim returns the matrix dimension n.
func (m *Matrix) Dim() int { return m.n }

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.vals) }

// At returns the entry at (i, j). O(log row-degree).
func (m *Matrix) At(i, j int) float64 {
	lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
	k := lo + sort.Search(hi-lo, func(k int) bool { return int(m.colIdx[lo+k]) >= j })
	if k < hi && int(m.colIdx[k]) == j {
		return m.vals[k]
	}
	return 0
}

// MulVec computes dst = M·x. dst and x must have length Dim and must not
// alias.
func (m *Matrix) MulVec(dst, x []float64) {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// Diag returns a copy of the diagonal.
func (m *Matrix) Diag() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// RowSums returns the vector of row sums, used to build degree matrices.
func (m *Matrix) RowSums() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k]
		}
		d[i] = s
	}
	return d
}

// Laplacian returns L = D - M where D is the diagonal degree matrix of
// row sums — the unnormalized graph Laplacian of Eq. 2.
func Laplacian(adj *Matrix) *Matrix {
	n := adj.Dim()
	coords := make([]Coord, 0, adj.NNZ()+n)
	deg := adj.RowSums()
	for i := 0; i < n; i++ {
		for k := adj.rowPtr[i]; k < adj.rowPtr[i+1]; k++ {
			coords = append(coords, Coord{Row: i, Col: int(adj.colIdx[k]), Val: -adj.vals[k]})
		}
		coords = append(coords, Coord{Row: i, Col: i, Val: deg[i]})
	}
	return New(n, coords)
}

// AddScaled returns A + alpha·B + beta·I for same-dimension matrices;
// it assembles the system matrix S + µ1·L + µ2·I of Eq. 3.
func AddScaled(a *Matrix, alpha float64, b *Matrix, beta float64) *Matrix {
	if a.Dim() != b.Dim() {
		panic(fmt.Sprintf("sparse.AddScaled: dims %d != %d", a.Dim(), b.Dim()))
	}
	n := a.Dim()
	coords := make([]Coord, 0, a.NNZ()+b.NNZ()+n)
	for i := 0; i < n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			coords = append(coords, Coord{Row: i, Col: int(a.colIdx[k]), Val: a.vals[k]})
		}
		for k := b.rowPtr[i]; k < b.rowPtr[i+1]; k++ {
			coords = append(coords, Coord{Row: i, Col: int(b.colIdx[k]), Val: alpha * b.vals[k]})
		}
		if beta != 0 {
			coords = append(coords, Coord{Row: i, Col: i, Val: beta})
		}
	}
	return New(n, coords)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SolveResult reports how an iterative solve went.
type SolveResult struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// CG solves A·x = b for symmetric positive-definite A using conjugate
// gradient, overwriting x (which may start at zero). It stops when the
// relative residual drops below tol or after maxIter iterations.
func CG(a *Matrix, x, b []float64, tol float64, maxIter int) SolveResult {
	n := a.Dim()
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	copy(p, r)
	rs := Dot(r, r)
	bn := Norm2(b)
	if bn == 0 {
		bn = 1
	}
	res := SolveResult{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if math.Sqrt(rs)/bn < tol {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		denom := Dot(p, ap)
		if denom == 0 {
			break
		}
		alpha := rs / denom
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	res.Residual = math.Sqrt(rs) / bn
	if res.Residual < tol {
		res.Converged = true
	}
	return res
}

// Jacobi solves A·x = b with Jacobi iteration, overwriting x. A must have
// a nonzero diagonal. Kept alongside CG because the paper cites both; the
// ablation bench compares them.
func Jacobi(a *Matrix, x, b []float64, tol float64, maxIter int) SolveResult {
	n := a.Dim()
	d := a.Diag()
	next := make([]float64, n)
	bn := Norm2(b)
	if bn == 0 {
		bn = 1
	}
	res := SolveResult{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				j := int(a.colIdx[k])
				if j != i {
					s += a.vals[k] * x[j]
				}
			}
			next[i] = (b[i] - s) / d[i]
		}
		copy(x, next)
		// Residual check every few sweeps to amortize the extra MulVec.
		if res.Iterations%4 == 3 || res.Iterations == maxIter-1 {
			a.MulVec(next, x)
			var rr float64
			for i := range next {
				diff := b[i] - next[i]
				rr += diff * diff
			}
			res.Residual = math.Sqrt(rr) / bn
			if res.Residual < tol {
				res.Converged = true
				res.Iterations++
				return res
			}
			copy(next, x) // restore scratch; next sweep overwrites anyway
		}
	}
	return res
}
