package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSumsDuplicatesDropsZeros(t *testing.T) {
	m := New(3, []Coord{
		{0, 1, 2}, {0, 1, 3}, // duplicates sum
		{1, 2, 0},             // zero dropped
		{2, 2, -1}, {2, 2, 1}, // sums to zero, dropped
	})
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v", got)
	}
	if m.At(1, 2) != 0 || m.At(2, 2) != 0 {
		t.Error("zero entries should be absent")
	}
	if m.NNZ() != 1 {
		t.Errorf("nnz = %d", m.NNZ())
	}
}

func TestMulVec(t *testing.T) {
	// [[2,1],[0,3]] * [1,2] = [4,6]
	m := New(2, []Coord{{0, 0, 2}, {0, 1, 1}, {1, 1, 3}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 2})
	if dst[0] != 4 || dst[1] != 6 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestDiagAndRowSums(t *testing.T) {
	m := New(2, []Coord{{0, 0, 2}, {0, 1, 1}, {1, 1, 3}})
	d := m.Diag()
	if d[0] != 2 || d[1] != 3 {
		t.Errorf("diag = %v", d)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 3 {
		t.Errorf("rowsums = %v", rs)
	}
}

// symAdj returns a random symmetric non-negative adjacency matrix.
func symAdj(rng *rand.Rand, n int, density float64) *Matrix {
	var coords []Coord
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.Float64() + 0.1
				coords = append(coords, Coord{i, j, v}, Coord{j, i, v})
			}
		}
	}
	return New(n, coords)
}

func TestLaplacianRowsSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := symAdj(rng, 20, 0.3)
	l := Laplacian(adj)
	for _, rs := range l.RowSums() {
		if math.Abs(rs) > 1e-9 {
			t.Fatalf("laplacian row sum %v != 0", rs)
		}
	}
	// Laplacian quadratic form is non-negative (PSD).
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	lx := make([]float64, 20)
	l.MulVec(lx, x)
	if q := Dot(x, lx); q < -1e-9 {
		t.Errorf("x^T L x = %v < 0", q)
	}
}

func TestAddScaled(t *testing.T) {
	a := New(2, []Coord{{0, 0, 1}, {1, 1, 1}})
	b := New(2, []Coord{{0, 1, 2}, {1, 0, 2}})
	c := AddScaled(a, 0.5, b, 3)
	if c.At(0, 0) != 4 { // 1 + 3
		t.Errorf("At(0,0) = %v", c.At(0, 0))
	}
	if c.At(0, 1) != 1 { // 0.5*2
		t.Errorf("At(0,1) = %v", c.At(0, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	AddScaled(a, 1, New(3, nil), 0)
}

// spdSystem builds the Eq. 3-shaped SPD system S + µ1 L + µ2 I.
func spdSystem(rng *rand.Rand, n int) (*Matrix, []float64) {
	adj := symAdj(rng, n, 0.25)
	lap := Laplacian(adj)
	var sc []Coord
	for i := 0; i < n/2; i++ {
		sc = append(sc, Coord{i, i, 1})
	}
	s := New(n, sc)
	a := AddScaled(s, 1.0, lap, 0.05)
	b := make([]float64, n)
	for i := 0; i < n/2; i++ {
		b[i] = rng.Float64()
	}
	return a, b
}

func TestCGSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := spdSystem(rng, 40)
	x := make([]float64, 40)
	res := CG(a, x, b, 1e-10, 2000)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	assertResidual(t, a, x, b, 1e-7)
}

func TestJacobiSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := spdSystem(rng, 40)
	x := make([]float64, 40)
	res := Jacobi(a, x, b, 1e-10, 20000)
	if !res.Converged {
		t.Fatalf("Jacobi did not converge: %+v", res)
	}
	assertResidual(t, a, x, b, 1e-6)
}

func TestCGAndJacobiAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := spdSystem(rng, 30)
	x1 := make([]float64, 30)
	x2 := make([]float64, 30)
	CG(a, x1, b, 1e-12, 5000)
	Jacobi(a, x2, b, 1e-12, 50000)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-5 {
			t.Fatalf("solution mismatch at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a, _ := spdSystem(rand.New(rand.NewSource(1)), 10)
	b := make([]float64, 10)
	x := make([]float64, 10)
	res := CG(a, x, b, 1e-10, 100)
	if !res.Converged {
		t.Fatalf("zero RHS should converge instantly: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("solution of zero system should be zero")
		}
	}
}

func assertResidual(t *testing.T, a *Matrix, x, b []float64, tol float64) {
	t.Helper()
	ax := make([]float64, len(x))
	a.MulVec(ax, x)
	var rr float64
	for i := range ax {
		d := b[i] - ax[i]
		rr += d * d
	}
	if r := math.Sqrt(rr); r > tol {
		t.Errorf("residual %v > %v", r, tol)
	}
}

// TestDotNormProperties checks algebraic identities with testing/quick.
func TestDotNormProperties(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, math.Mod(x, 1e3))
			}
		}
		n := Norm2(v)
		return n >= 0 && math.Abs(n*n-Dot(v, v)) <= 1e-6*(1+n*n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
