package sparse

import "math"

// GaussSeidel solves a·x = b by Gauss–Seidel iteration, overwriting x
// (which provides the initial guess). Like Jacobi it requires nonzero
// diagonal entries and converges for the diagonally dominant systems
// Eq. 3 produces (S + µ1·L + µ2·I has row dominance by construction),
// but it propagates updates within a sweep and so typically needs about
// half the iterations. Kept alongside CG and Jacobi for the solver
// ablation.
func GaussSeidel(a *Matrix, x, b []float64, tol float64, maxIter int) SolveResult {
	n := a.Dim()
	for iter := 1; iter <= maxIter; iter++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			var sum, diag float64
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				j := int(a.colIdx[k])
				if j == i {
					diag = a.vals[k]
					continue
				}
				sum += a.vals[k] * x[j]
			}
			if diag == 0 {
				// Singular row: leave x[i] untouched, as Jacobi does.
				continue
			}
			nx := (b[i] - sum) / diag
			if d := math.Abs(nx - x[i]); d > maxDelta {
				maxDelta = d
			}
			x[i] = nx
		}
		if maxDelta < tol {
			return SolveResult{Iterations: iter, Converged: true, Residual: residual(a, x, b)}
		}
	}
	return SolveResult{Iterations: maxIter, Converged: false, Residual: residual(a, x, b)}
}

// residual returns ‖a·x − b‖₂.
func residual(a *Matrix, x, b []float64) float64 {
	n := a.Dim()
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] -= b[i]
	}
	return Norm2(r)
}
