package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diagDominant builds a random symmetric strictly diagonally dominant
// matrix like the (S + µ1·L + µ2·I) systems of Eq. 3.
func diagDominant(rng *rand.Rand, n int) *Matrix {
	var coords []Coord
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			coords = append(coords, Coord{Row: i, Col: j, Val: v}, Coord{Row: j, Col: i, Val: v})
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{Row: i, Col: i, Val: rowAbs[i] + 1})
	}
	return New(n, coords)
}

func TestGaussSeidelSolvesDominantSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		a := diagDominant(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		x := make([]float64, n)
		res := GaussSeidel(a, x, b, 1e-12, 10_000)
		if !res.Converged {
			t.Fatalf("trial %d: did not converge (residual %g)", trial, res.Residual)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want[i])
			}
		}
	}
}

// TestSolversAgree property-tests that CG, Jacobi and Gauss–Seidel all
// converge to the same solution on random SPD dominant systems.
func TestSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		a := diagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		solve := func(fn func(*Matrix, []float64, []float64, float64, int) SolveResult) []float64 {
			x := make([]float64, n)
			fn(a, x, b, 1e-12, 20_000)
			return x
		}
		xcg := solve(CG)
		xj := solve(Jacobi)
		xgs := solve(GaussSeidel)
		for i := 0; i < n; i++ {
			if math.Abs(xcg[i]-xj[i]) > 1e-5 || math.Abs(xcg[i]-xgs[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGaussSeidelFasterThanJacobi documents the expected iteration
// advantage on a representative Laplacian system.
func TestGaussSeidelFewerIterationsThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := diagDominant(rng, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xj := make([]float64, 60)
	xg := make([]float64, 60)
	rj := Jacobi(a, xj, b, 1e-10, 50_000)
	rg := GaussSeidel(a, xg, b, 1e-10, 50_000)
	if !rj.Converged || !rg.Converged {
		t.Fatal("solver failed to converge")
	}
	if rg.Iterations > rj.Iterations {
		t.Fatalf("Gauss-Seidel took %d iterations, Jacobi %d; expected GS <= Jacobi", rg.Iterations, rj.Iterations)
	}
}

func TestGaussSeidelSingularRowLeftUntouched(t *testing.T) {
	// Row 1 is all zero: x[1] must keep its initial guess.
	a := New(2, []Coord{{Row: 0, Col: 0, Val: 2}})
	x := []float64{0, 7}
	GaussSeidel(a, x, []float64{4, 0}, 1e-12, 100)
	if math.Abs(x[0]-2) > 1e-9 {
		t.Fatalf("x[0] = %g, want 2", x[0])
	}
	if x[1] != 7 {
		t.Fatalf("x[1] = %g, want untouched 7", x[1])
	}
}
