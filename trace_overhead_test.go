package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestTraceOverheadBudget pins the telemetry tax on the serving hot
// path: an engine carrying a *disabled* tracer must stay within 5% of
// an engine with no tracer at all on the BenchmarkServe/RouterDirectCH
// workload (Zipf-skewed queries, cache off, CH path backend — the
// configuration where per-query fixed costs are most visible). The
// disabled path is a handful of nil checks and one context miss;
// anything above the budget means tracing crept onto the fast path.
func TestTraceOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	w := benchWorld(t)
	r := w.MustRouter()
	chRouter := r.DeepClone()
	chRouter.EnableCH(ch.Config{})
	qs := benchQueries(t)

	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(qs)-1))
	mix := make([]int, 8192)
	for i := range mix {
		mix[i] = int(zipf.Uint64())
	}

	measure := func(e *serve.Engine) float64 {
		// Min of two runs: the second absorbs warm-up jitter.
		best := 0.0
		for run := 0; run < 2; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := qs[mix[i%len(mix)]]
					e.Route(q.S, q.D)
				}
			})
			ns := float64(res.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	bare := serve.NewEngine(chRouter.DeepClone(), serve.Options{CacheSize: -1})
	disabled := obs.NewTracer(obs.Config{})
	disabled.SetEnabled(false)
	traced := serve.NewEngine(chRouter.DeepClone(), serve.Options{CacheSize: -1, Tracer: disabled})

	const budget = 1.05
	var ratio float64
	for attempt := 1; attempt <= 3; attempt++ {
		base := measure(bare)
		with := measure(traced)
		ratio = with / base
		t.Logf("attempt %d: no tracer %.0f ns/op, disabled tracer %.0f ns/op, ratio %.3f", attempt, base, with, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Fatalf("disabled-tracing overhead ratio %.3f exceeds the %.0f%% budget", ratio, 100*(budget-1))
}
