package l2r_test

import (
	"bytes"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

// extWorld simulates a small world for the extended-API tests.
func extWorld(tb testing.TB, seed int64, trips int) (*roadnet.Graph, []*traj.Trajectory) {
	tb.Helper()
	road := roadnet.Generate(roadnet.Tiny(seed))
	sim := traj.NewSimulator(road, traj.D2Like(seed, trips))
	return road, sim.Run()
}

func TestBuildPersonalized(t *testing.T) {
	road, ts := extWorld(t, 51, 400)
	// Pick the driver with the most trips.
	counts := map[int]int{}
	for _, tr := range ts {
		counts[tr.Driver]++
	}
	best, bestN := -1, 0
	for d, n := range counts {
		if n > bestN {
			best, bestN = d, n
		}
	}
	if bestN < 5 {
		t.Skip("no driver with enough trips")
	}
	r, err := l2r.BuildPersonalized(road, ts, best, l2r.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Trajectories != bestN {
		t.Fatalf("personalized router trained on %d trips, want %d", r.Stats().Trajectories, bestN)
	}
	res := r.Route(ts[0].Source(), ts[0].Destination())
	if len(res.Path) > 0 && !res.Path.Valid(road) {
		t.Fatal("personalized route invalid")
	}
}

func TestBuildPersonalizedUnknownDriver(t *testing.T) {
	road, ts := extWorld(t, 53, 50)
	if _, err := l2r.BuildPersonalized(road, ts, -99, l2r.Options{SkipMapMatching: true}); err == nil {
		t.Fatal("unknown driver built a router")
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	road, ts := extWorld(t, 57, 400)
	r, err := l2r.Build(road, ts, l2r.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := l2r.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Route(ts[0].Source(), ts[0].Destination())
	b := loaded.Route(ts[0].Source(), ts[0].Destination())
	if len(a.Path) != len(b.Path) {
		t.Fatalf("loaded router routes differently: %d vs %d vertices", len(b.Path), len(a.Path))
	}
}

func TestFacadeIngest(t *testing.T) {
	road, ts := extWorld(t, 59, 500)
	cut := len(ts) / 2
	r, err := l2r.Build(road, ts[:cut], l2r.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Ingest(ts[cut:], l2r.IngestOptions{SkipMapMatching: true})
	if st.Paths == 0 {
		t.Fatal("ingest processed no paths")
	}
}
