package l2r_test

import (
	"bytes"
	"fmt"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

// Example demonstrates the minimal build-and-route flow.
func Example() {
	road := roadnet.Generate(roadnet.Tiny(1))
	cfg := traj.D2Like(1, 400)
	trips := traj.NewSimulator(road, cfg).Run()
	train, test := traj.Split(trips, 0.75*cfg.HorizonSec)

	router, err := l2r.Build(road, train, l2r.Options{SkipMapMatching: true})
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	q := test[0]
	res := router.Route(q.Source(), q.Destination())
	fmt.Println("built:", router.Stats().Regions > 0)
	fmt.Println("answered:", len(res.Path) > 0)
	fmt.Println("path connected:", res.Path.Valid(road))
	// Output:
	// built: true
	// answered: true
	// path connected: true
}

// ExampleRouter_Save demonstrates artifact persistence round trips.
func ExampleRouter_Save() {
	road := roadnet.Generate(roadnet.Tiny(2))
	cfg := traj.D2Like(2, 300)
	trips := traj.NewSimulator(road, cfg).Run()

	router, err := l2r.Build(road, trips, l2r.Options{SkipMapMatching: true})
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	var artifact bytes.Buffer
	if err := router.Save(&artifact); err != nil {
		fmt.Println("save failed:", err)
		return
	}
	loaded, err := l2r.Load(&artifact)
	if err != nil {
		fmt.Println("load failed:", err)
		return
	}
	fmt.Println("same regions:", loaded.Stats().Regions == router.Stats().Regions)
	// Output:
	// same regions: true
}

// ExampleRouter_Ingest demonstrates incremental updates.
func ExampleRouter_Ingest() {
	road := roadnet.Generate(roadnet.Tiny(3))
	cfg := traj.D2Like(3, 400)
	trips := traj.NewSimulator(road, cfg).Run()
	boot, fresh := trips[:300], trips[300:]

	router, err := l2r.Build(road, boot, l2r.Options{SkipMapMatching: true})
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	st := router.Ingest(fresh, l2r.IngestOptions{SkipMapMatching: true})
	fmt.Println("ingested all:", st.Paths == len(fresh))
	fmt.Println("staleness in range:", st.StalenessRatio() >= 0 && st.StalenessRatio() <= 1)
	// Output:
	// ingested all: true
	// staleness in range: true
}
