// Package l2r is the public API of learn2route, a reproduction of
// "Learning to Route with Sparse Trajectory Sets" (Guo, Yang, Hu,
// Jensen — IEEE ICDE 2018). It builds a trajectory-based router in three
// steps: (1) modularity-based clustering of road intersections into
// regions and construction of a region graph from trajectories; (2)
// learning of routing preferences on trajectory-covered region edges and
// transduction-based transfer of those preferences to uncovered edges;
// (3) unified routing between arbitrary (source, destination) pairs.
//
// Quick start:
//
//	road := roadnet.Generate(roadnet.N2Like(1))
//	sim := traj.NewSimulator(road, traj.D2Like(1, 3000))
//	trips := sim.Run()
//	train, test := traj.Split(trips, 21*86_400)
//	router, err := l2r.Build(road, train, l2r.Options{})
//	if err != nil { ... }
//	res := router.Route(test[0].Source(), test[0].Destination())
//	fmt.Println(res.Path)
package l2r

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"repro/internal/core"
	"repro/internal/maint"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/traj"
	"repro/internal/wal"
)

// Re-exported core types. See the internal/core package for full
// documentation of each.
type (
	// Options configures the offline build pipeline.
	Options = core.Options
	// Stats reports offline pipeline measurements (phase timings,
	// region/edge counts).
	Stats = core.Stats
	// Router answers routing queries over a built L2R system.
	Router = core.Router
	// RouteResult is the outcome of a single query.
	RouteResult = core.RouteResult
	// Category classifies queries by endpoint region membership.
	Category = core.Category
)

// Query categories, mirroring the paper's evaluation breakdown.
const (
	InRegion    = core.InRegion
	InOutRegion = core.InOutRegion
	OutRegion   = core.OutRegion
)

// PathBackend selects the pluggable shortest-path engine a Router runs
// on — set Options.PathBackend at Build time, ServeOptions.PathBackend
// when serving, or call Router.EnableCH after Load. See
// internal/route.PathEngine for the seam and its concurrency contract.
type PathBackend = core.PathBackend

// Path backends.
const (
	// BackendDijkstra runs every query on plain Dijkstra.
	BackendDijkstra = core.BackendDijkstra
	// BackendCH accelerates scalar fastest-path queries with a
	// contraction hierarchy built once and shared by all clones.
	BackendCH = core.BackendCH
)

// Build runs the offline pipeline — map matching, clustering, region
// graph, preference learning, preference transfer, B-edge path
// materialization — over a road network and training trajectories.
func Build(road *roadnet.Graph, training []*traj.Trajectory, opt Options) (*Router, error) {
	return core.Build(road, training, opt)
}

// TimeAware couples a peak and an off-peak router, built from the
// corresponding slices of the training data, as in the paper's handling
// of time-dependent traffic (Section III, scope item 1). Depending on
// the departure period, one of the two routers answers.
type TimeAware struct {
	Peak    *Router
	OffPeak *Router
}

// BuildTimeAware splits the training trajectories by their Peak flag and
// builds one router per period. Either period may end up with too few
// trajectories to build; in that case the other period's router is used
// for both.
func BuildTimeAware(road *roadnet.Graph, training []*traj.Trajectory, opt Options) (*TimeAware, error) {
	var peak, off []*traj.Trajectory
	for _, t := range training {
		if t.Peak {
			peak = append(peak, t)
		} else {
			off = append(off, t)
		}
	}
	ta := &TimeAware{}
	var err error
	if len(peak) > 0 {
		ta.Peak, err = core.Build(road, peak, opt)
		if err != nil {
			return nil, err
		}
	}
	if len(off) > 0 {
		ta.OffPeak, err = core.Build(road, off, opt)
		if err != nil {
			return nil, err
		}
	}
	if ta.Peak == nil {
		ta.Peak = ta.OffPeak
	}
	if ta.OffPeak == nil {
		ta.OffPeak = ta.Peak
	}
	if ta.Peak == nil {
		return nil, errNoData
	}
	return ta, nil
}

// Route answers a query using the router for the departure period.
func (ta *TimeAware) Route(s, d roadnet.VertexID, peak bool) RouteResult {
	if peak {
		return ta.Peak.Route(s, d)
	}
	return ta.OffPeak.Route(s, d)
}

type buildError string

func (e buildError) Error() string { return string(e) }

const errNoData = buildError("l2r: no training trajectories in either period")

// BuildPersonalized builds a router from a single driver's trajectories
// only, adapting L2R to personalized routing as sketched in the paper's
// scope discussion (Section III, scope item 2). One driver's data is far
// sparser than the fleet's, so more region pairs rely on transferred
// preferences; the returned router is otherwise a regular Router.
func BuildPersonalized(road *roadnet.Graph, training []*traj.Trajectory, driver int, opt Options) (*Router, error) {
	var own []*traj.Trajectory
	for _, t := range training {
		if t.Driver == driver {
			own = append(own, t)
		}
	}
	if len(own) == 0 {
		return nil, errNoDriverData
	}
	return core.Build(road, own, opt)
}

const errNoDriverData = buildError("l2r: no training trajectories for the requested driver")

// IngestOptions configures Router.Ingest; re-exported from core.
type IngestOptions = core.IngestOptions

// IngestStats reports one incremental update; re-exported from core.
type IngestStats = core.IngestStats

// Load reconstructs a router from an artifact written by Router.Save.
// See core.Load.
func Load(r io.Reader) (*Router, error) { return core.Load(r) }

// ArtifactMeta is the metadata persisted with every saved router:
// name, build-options summary, save generation. See core.ArtifactMeta.
type ArtifactMeta = core.ArtifactMeta

// BuildInfo summarizes the Options a router was built with; carried
// inside ArtifactMeta.
type BuildInfo = core.BuildInfo

// Serving re-exports. See the internal/serve package for full
// documentation of the snapshot-swapping design.
type (
	// Engine serves a built Router to concurrent query traffic:
	// lock-free snapshot reads, a sharded LRU route cache with
	// generation-based invalidation, copy-on-write live ingestion, a
	// batch API, and an HTTP front-end via Engine.Handler.
	Engine = serve.Engine
	// ServeOptions configures an Engine (workers, cache size/shards,
	// ingest tuning).
	ServeOptions = serve.Options
	// ServeStats is a point-in-time snapshot of serving health: QPS,
	// latency quantiles per query category, cache hit rate, snapshot
	// generation and ingest lag.
	ServeStats = serve.Stats
	// BatchRequest is one query in an Engine.RouteBatch call.
	BatchRequest = serve.Request
	// BatchResponse is the answer to one BatchRequest.
	BatchResponse = serve.Response
)

// NewEngine wraps a built router for concurrent online serving. The
// engine takes ownership of r; don't mutate it afterwards. Durability
// options are ignored here — use NewDurableEngine.
func NewEngine(r *Router, opt ServeOptions) *Engine { return serve.NewEngine(r, opt) }

// Durability re-exports. With ServeOptions.WALDir set, an engine
// journals every ingest batch to a write-ahead log *before* the
// snapshot swap that applies it, periodically folds the log into a
// checkpoint (the standard artifact envelope), and recovers checkpoint
// + log on restart — live-learned preference state survives crashes.
// See internal/wal and OPERATIONS.md.

// NewDurableEngine wraps a built router for serving with durable
// ingestion, first recovering whatever a previous process left in
// ServeOptions.WALDir (the latest checkpoint plus the write-ahead-log
// tail, torn final record tolerated, corruption refused). With an
// empty WALDir it is exactly NewEngine.
func NewDurableEngine(r *Router, opt ServeOptions) (*Engine, error) {
	return serve.NewDurableEngine(r, opt)
}

// DurabilityStats reports an engine's write-ahead-log attachment
// (appends, checkpoints, recovery facts); in ServeStats.Durability and
// under "durability" in /stats.
type DurabilityStats = serve.DurabilityStats

// WALSyncPolicy selects the write-ahead log's append fsync policy
// (ServeOptions.WALSync).
type WALSyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	// WALSyncAlways fsyncs every append: batches reported durable
	// survive machine crashes. The default.
	WALSyncAlways = wal.SyncAlways
	// WALSyncNone leaves appends to the OS page cache: they survive a
	// process kill, but a power loss may lose the last seconds.
	WALSyncNone = wal.SyncNone
)

// Multi-tenant serving re-exports. A Fleet hosts one named Engine per
// world — one region graph per city's trajectory set — behind a single
// HTTP front-end with tenant-addressed routes (/t/{tenant}/route, ...)
// and aggregate stats; a FleetWatcher keeps it in sync with a
// directory of artifacts, hot-swapping rebuilt files into the live
// fleet without dropping in-flight queries. See internal/serve.
type (
	// Fleet is a registry of named serving engines.
	Fleet = serve.Fleet
	// FleetStats aggregates serving health across tenants.
	FleetStats = serve.FleetStats
	// FleetWatcher hot-reloads a fleet from an artifact directory.
	FleetWatcher = serve.Watcher
	// TenantInfo is one row of the fleet's /tenants listing.
	TenantInfo = serve.TenantInfo
)

// ArtifactExt is the artifact file extension fleet directory loading
// recognizes (".l2r").
const ArtifactExt = serve.ArtifactExt

// NewFleet creates an empty multi-tenant fleet; opt configures every
// engine the fleet creates for its tenants.
func NewFleet(opt ServeOptions) *Fleet { return serve.NewFleet(opt) }

// NewFleetWatcher creates a watcher that loads every *.l2r in dir as a
// tenant of fleet and hot-swaps changed files on each Scan.
func NewFleetWatcher(fleet *Fleet, dir string) *FleetWatcher { return serve.NewWatcher(fleet, dir) }

// Streaming ingestion re-exports. The pipeline turns raw per-vehicle
// GPS point feeds — the paper's actual input — into trajectory batches
// for a serving engine: per-vehicle sessionization (gap/dwell/teleport
// segmentation behind a bounded reorder window), windowed online map
// matching that equals the offline HMM pass, and adaptive batching
// that amortizes the copy-on-write snapshot swap across many
// trajectories. See internal/stream.
type (
	// StreamPoint is one raw GPS observation (the NDJSON wire unit).
	StreamPoint = stream.Point
	// StreamConfig tunes sessionization, matching and batching.
	StreamConfig = stream.Config
	// StreamIngestor is a pipeline bound to one serving engine.
	StreamIngestor = stream.Ingestor
	// StreamSessionizer is the standalone sessionization stage.
	StreamSessionizer = stream.Sessionizer
	// FleetStreams tracks the per-tenant pipelines of a fleet.
	FleetStreams = stream.FleetStreams
	// StreamStats reports pipeline health (in ServeStats.Stream).
	StreamStats = serve.StreamStats
)

// AttachStream wires a streaming pipeline into an engine: POST /stream
// appears on its HTTP API and pipeline health in Stats().Stream. Close
// the returned ingestor at shutdown.
func AttachStream(e *Engine, cfg StreamConfig) *StreamIngestor { return stream.Attach(e, cfg) }

// AttachFleetStreams attaches a streaming pipeline to every current
// and future tenant of a fleet (POST /t/{tenant}/stream).
func AttachFleetStreams(f *Fleet, cfg StreamConfig) *FleetStreams { return stream.AttachFleet(f, cfg) }

// StreamPointsFrom flattens trajectories into a time-ordered point
// stream for replay; perTrip keys each trajectory as its own vehicle.
func StreamPointsFrom(ts []*traj.Trajectory, perTrip bool) []StreamPoint {
	return stream.PointsFrom(ts, perTrip)
}

// ReadStreamNDJSON parses a recorded point stream (the POST /stream
// wire format).
func ReadStreamNDJSON(r io.Reader) ([]StreamPoint, error) { return stream.ReadNDJSON(r) }

// ReplayStream feeds a time-ordered point stream into a pipeline at a
// rate multiple of the feed's own clock (<= 0 replays at full speed),
// closing all sessions at the end.
func ReplayStream(ctx context.Context, ing *StreamIngestor, pts []StreamPoint, rate float64) int {
	return stream.Replay(ctx, ing, pts, rate)
}

// Telemetry re-exports. A Tracer (ServeOptions.Tracer) records
// per-request span trees through every serving layer — HTTP parse,
// cache lookup, coalescing, snapshot acquire, the routing stages, WAL
// append, snapshot swap — into a ring served by /debug/trace, a
// slow-query log, and per-stage latency histograms exported on
// /metrics in Prometheus text format. See internal/obs.
type (
	// Tracer records request traces and per-stage histograms.
	Tracer = obs.Tracer
	// TraceConfig tunes a Tracer (ring sizes, slow-query threshold).
	TraceConfig = obs.Config
	// Trace is one completed request trace (the /debug/trace unit).
	Trace = obs.Trace
	// TracerStats summarizes tracer activity.
	TracerStats = obs.TracerStats
	// EngineDebugSnapshot is the non-blocking /debug/snapshot payload.
	EngineDebugSnapshot = serve.DebugSnapshot
)

// NewTracer creates an enabled request tracer; set it on
// ServeOptions.Tracer (one shared Tracer for a whole fleet) before
// building engines.
func NewTracer(cfg TraceConfig) *Tracer { return obs.NewTracer(cfg) }

// AccessLog wraps an engine or fleet HTTP handler with one structured
// slog line per request: method, path, tenant, status, bytes, duration
// and request ID.
func AccessLog(l *slog.Logger, h http.Handler) http.Handler { return serve.AccessLog(l, h) }

// Model-quality observability re-exports. A quality observer shadow-
// scores a sampled fraction of ingested trajectories off the hot path
// (re-routing their ODs on the current snapshot and scoring the served
// path against the driven one with the paper's Eq. 1 / Eq. 4), tracks
// preference drift and staleness gauges, and keeps a ring of the
// worst-scoring OD exemplars on GET /debug/quality. See
// internal/quality.
type (
	// QualityConfig tunes a quality observer (sample rate, exemplar
	// ring, pacing, rolling-window size).
	QualityConfig = quality.Config
	// QualityObserver is one engine's shadow scorer; Close at shutdown.
	QualityObserver = quality.Observer
	// FleetQuality tracks the per-tenant observers AttachFleetQuality
	// creates.
	FleetQuality = quality.FleetObservers
	// QualityStats is the observer health block in Stats().Quality,
	// /stats and /debug/quality.
	QualityStats = serve.QualityStats
	// QualityExemplar is one worst-scoring OD kept for debugging.
	QualityExemplar = quality.Exemplar
)

// AttachQuality wires a model-quality observer into an engine: shadow
// scores feed Stats().Quality, /metrics (l2r_quality_* / l2r_drift_*)
// and GET /debug/quality. Call Close on the result at shutdown.
func AttachQuality(e *Engine, cfg QualityConfig) *QualityObserver { return quality.Attach(e, cfg) }

// AttachFleetQuality attaches a quality observer to every current and
// future tenant of a fleet (GET /t/{tenant}/debug/quality).
func AttachFleetQuality(f *Fleet, cfg QualityConfig) *FleetQuality {
	return quality.AttachFleet(f, cfg)
}

// Background-maintenance re-exports. A maintainer accumulates the
// evidence an engine ingests, watches rebuild triggers (preference
// drift, evidence volume, a timer), and when one fires re-runs
// preference learning, transduction and B-edge materialization on a
// copy-on-write clone off the hot path, publishing the rebuilt model
// through the engine's snapshot swap. See internal/maint.
type (
	// MaintConfig tunes a maintainer (accumulator capacity, trigger
	// thresholds, check cadence, pipeline options).
	MaintConfig = maint.Config
	// Maintainer is one engine's background maintenance pipeline;
	// Close at shutdown.
	Maintainer = maint.Maintainer
	// FleetMaint tracks the per-tenant maintainers AttachFleetMaint
	// creates.
	FleetMaint = maint.FleetMaintainers
	// MaintStats is the maintainer health block in Stats().Maintenance,
	// /stats and /debug/maint.
	MaintStats = serve.MaintStats
)

// AttachMaint wires a background maintainer into an engine: evidence
// accumulation and rebuild cycles feed Stats().Maintenance, /metrics
// (l2r_maint_*) and GET /debug/maint. Call Close on the result at
// shutdown.
func AttachMaint(e *Engine, cfg MaintConfig) *Maintainer { return maint.Attach(e, cfg) }

// AttachFleetMaint attaches a maintainer to every current and future
// tenant of a fleet (GET /t/{tenant}/debug/maint).
func AttachFleetMaint(f *Fleet, cfg MaintConfig) *FleetMaint {
	return maint.AttachFleet(f, cfg)
}
