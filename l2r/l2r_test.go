package l2r_test

import (
	"testing"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

func TestPublicAPIQuickstart(t *testing.T) {
	road := roadnet.Generate(roadnet.Tiny(42))
	cfg := traj.D2Like(42, 150)
	trips := traj.NewSimulator(road, cfg).Run()
	train, test := traj.Split(trips, 0.75*cfg.HorizonSec)

	router, err := l2r.Build(road, train, l2r.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if router.Stats().Regions == 0 {
		t.Fatal("no regions")
	}
	for _, tr := range test[:min(10, len(test))] {
		res := router.Route(tr.Source(), tr.Destination())
		if len(res.Path) < 2 || !res.Path.Valid(road) {
			t.Fatalf("bad path for test trip %d", tr.ID)
		}
		switch res.Category {
		case l2r.InRegion, l2r.InOutRegion, l2r.OutRegion:
		default:
			t.Fatalf("unknown category %v", res.Category)
		}
	}
}

func TestTimeAware(t *testing.T) {
	road := roadnet.Generate(roadnet.Tiny(43))
	cfg := traj.D2Like(43, 200)
	trips := traj.NewSimulator(road, cfg).Run()
	train, test := traj.Split(trips, 0.8*cfg.HorizonSec)

	ta, err := l2r.BuildTimeAware(road, train, l2r.Options{SkipMapMatching: true})
	if err != nil {
		t.Fatalf("BuildTimeAware: %v", err)
	}
	if ta.Peak == nil || ta.OffPeak == nil {
		t.Fatal("missing per-period router")
	}
	q := test[0]
	peakRes := ta.Route(q.Source(), q.Destination(), true)
	offRes := ta.Route(q.Source(), q.Destination(), false)
	if len(peakRes.Path) < 2 || len(offRes.Path) < 2 {
		t.Fatal("time-aware routing failed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
