// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its table/figure once
// (visible with -v via b.Log) and measures the computational kernel that
// produces it.
//
//	go test -bench=. -benchmem
//
// The benches run on a compact D2-like world built once per process; the
// full-scale numbers recorded in EXPERIMENTS.md come from
// cmd/l2rexp -scale full.
package repro_test

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/ch"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/pref"
	"repro/internal/region"
	"repro/internal/roadnet"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/spatial"
	"repro/internal/splice"
	"repro/internal/stream"
	"repro/internal/traj"
	"repro/internal/transfer"
	"repro/internal/worldgen"
)

// benchIndex and benchMatcher build the spatial index and map matcher
// for the bench world.
func benchIndex(w *exp.World) *spatial.Index {
	return spatial.NewIndex(w.Road, 300)
}

func benchMatcher(w *exp.World, idx *spatial.Index) *mapmatch.Matcher {
	return mapmatch.NewMatcher(w.Road, idx, mapmatch.Config{SigmaM: 15})
}

// benchSeed is the single seed every bench-world input derives from —
// road network, trajectory simulation and the Zipf query mixes below.
// One constant means one knob: a `-bench` run is reproducible, and
// cmd/l2rbench audit diffs against the bench world are meaningful.
const benchSeed = 5

var (
	worldOnce sync.Once
	benchW    *exp.World
)

// benchWorld lazily builds the shared compact world through
// internal/worldgen. The "bench" scale reproduces the historical
// hand-rolled world (roadnet.Tiny + D2-like 600-trip feed) exactly,
// so committed BENCH_route.json baselines stay comparable.
func benchWorld(b testing.TB) *exp.World {
	b.Helper()
	worldOnce.Do(func() {
		w := worldgen.Build(worldgen.MustScale(worldgen.ScaleBench, benchSeed))
		benchW = exp.NewPrebuilt("bench", w.Road, w.Sim, w.All, w.Train, w.Test,
			[]float64{1, 2, 4, 10}, exp.Config{Seed: benchSeed})
	})
	return benchW
}

// --- Table II ------------------------------------------------------------

func BenchmarkTableII(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.TableII(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traj.DistanceHistogram(w.Road, w.All, w.BucketsKm)
	}
}

// --- Table IV ------------------------------------------------------------

func BenchmarkTableIV(b *testing.B) {
	w := benchWorld(b)
	w.MustRouter()
	b.Log(exp.TableIV(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIVData(w, []float64{2, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6(a): preference learning --------------------------------------

func BenchmarkFig6a(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	b.Log(exp.Fig6a(w))
	// Kernel: learning one T-edge's preference from its path set.
	var paths []roadnet.Path
	rg := r.RegionGraph()
	for _, e := range rg.Edges {
		if e.Kind == region.TEdge && len(e.PathsFwd) > 0 {
			for _, pi := range e.PathsFwd {
				paths = append(paths, pi.Path)
			}
			break
		}
	}
	if len(paths) == 0 {
		b.Skip("no T-edge path sets")
	}
	learner := pref.NewLearner(w.Road)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		learner.Learn(paths)
	}
}

// --- Fig. 6(b): region-edge similarity -----------------------------------

func BenchmarkFig6b(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	b.Log(exp.Fig6b(w))
	rg := r.RegionGraph()
	if len(rg.Edges) < 2 {
		b.Skip("not enough region edges")
	}
	fa := transfer.EdgeFeatures(rg, rg.Edges[0])
	fb := transfer.EdgeFeatures(rg, rg.Edges[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transfer.ReSim(fa, fb)
	}
}

// --- Fig. 9(a)/(b): preference transfer ----------------------------------

func BenchmarkFig9a(b *testing.B) {
	w := benchWorld(b)
	w.MustRouter()
	b.Log(exp.Fig9a(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9aCompute(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	w := benchWorld(b)
	w.MustRouter()
	b.Log(exp.Fig9b(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9bCompute(w); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 10/11: accuracy ------------------------------------------------

// benchQueries returns the evaluation queries of the bench world.
func benchQueries(b testing.TB) []eval.Query {
	w := benchWorld(b)
	r := w.MustRouter()
	qs := eval.QueriesFrom(w.Road, r, w.Test)
	if len(qs) == 0 {
		b.Skip("no queries")
	}
	return qs
}

func BenchmarkFig10(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.Fig10(w))
	r := w.MustRouter()
	qs := benchQueries(b)
	alg := eval.WrapL2R(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		path := alg.Route(q.Query)
		pref.SimEq1(w.Road, q.GT, path)
	}
}

func BenchmarkFig11(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.Fig11(w))
	r := w.MustRouter()
	qs := benchQueries(b)
	alg := eval.WrapL2R(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		path := alg.Route(q.Query)
		pref.SimEq4(w.Road, q.GT, path)
	}
}

// --- Fig. 12: online run time, one sub-bench per algorithm ----------------

func BenchmarkFig12(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.Fig12(w))
	r := w.MustRouter()
	qs := benchQueries(b)
	algs := []eval.Algorithm{
		eval.WrapL2R(r),
		baseline.NewShortest(w.Road),
		baseline.NewFastest(w.Road),
		baseline.NewDom(w.Road, w.Train, 3),
		baseline.NewTRIP(w.Road, w.Train),
	}
	for _, alg := range algs {
		alg := alg
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Route(qs[i%len(qs)].Query)
			}
		})
	}
}

// --- Fig. 13: web-service comparison --------------------------------------

func BenchmarkFig13(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.Fig13(w))
	qs := benchQueries(b)
	ws := baseline.NewWebService(w.Road)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		wps := ws.Directions(q.S, q.D)
		geo.MatchBand(q.GT.Polyline(w.Road), wps, 10)
	}
}

// --- Offline phase --------------------------------------------------------

func BenchmarkOffline(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.Offline(w))
	// Kernel: the clustering + region-graph phase over the training
	// paths (the full build is benchmarked end to end by the ablations
	// below at smaller scale).
	paths := make([]roadnet.Path, 0, len(w.Train))
	for _, t := range w.Train {
		paths = append(paths, t.Truth)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg := cluster.BuildTrajectoryGraph(w.Road, paths)
		regions := cluster.Cluster(tg, cluster.Options{})
		rg := region.Build(w.Road, regions, paths, region.Options{})
		rg.ConnectBFS()
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationSolver compares the two Eq. 3 solvers the paper cites.
func BenchmarkAblationSolver(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	rg := r.RegionGraph()
	var labeled []transfer.Labeled
	var targets []int
	for _, e := range rg.Edges {
		if e.Kind == region.TEdge && e.HasPref {
			labeled = append(labeled, transfer.Labeled{EdgeID: e.ID, Pref: e.Pref})
		} else {
			targets = append(targets, e.ID)
		}
	}
	if len(labeled) == 0 || len(targets) == 0 {
		b.Skip("degenerate region graph")
	}
	for _, solver := range []struct {
		name string
		s    transfer.Solver
	}{{"CG", transfer.CG}, {"Jacobi", transfer.Jacobi}, {"GaussSeidel", transfer.GaussSeidel}} {
		solver := solver
		b.Run(solver.name, func(b *testing.B) {
			cfg := transfer.DefaultConfig()
			cfg.Solver = solver.s
			if solver.s != transfer.CG {
				cfg.MaxIter = 20000
			}
			for i := 0; i < b.N; i++ {
				transfer.Run(rg, labeled, targets, cfg)
			}
		})
	}
}

// BenchmarkAblationClusterRoadType compares modularity clustering with
// and without the road-type constraint of Table I.
func BenchmarkAblationClusterRoadType(b *testing.B) {
	w := benchWorld(b)
	paths := make([]roadnet.Path, 0, len(w.Train))
	for _, t := range w.Train {
		paths = append(paths, t.Truth)
	}
	for _, variant := range []struct {
		name string
		opt  cluster.Options
	}{
		{"WithRoadType", cluster.Options{}},
		{"IgnoreRoadType", cluster.Options{IgnoreRoadType: true}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var regions []cluster.Region
			for i := 0; i < b.N; i++ {
				tg := cluster.BuildTrajectoryGraph(w.Road, paths)
				regions = cluster.Cluster(tg, variant.opt)
			}
			b.ReportMetric(float64(len(regions)), "regions")
		})
	}
}

// BenchmarkAblationAMR sweeps the adjacency-matrix reduction threshold,
// reporting the surviving similarity-graph edge count (the density the
// paper's Fig. 9(b) trades accuracy and run time over).
func BenchmarkAblationAMR(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	rg := r.RegionGraph()
	ids := make([]int, 0, len(rg.Edges))
	for _, e := range rg.Edges {
		ids = append(ids, e.ID)
	}
	if len(ids) > 400 {
		ids = ids[:400]
	}
	for _, amr := range []float64{0.5, 0.7, 0.9} {
		amr := amr
		b.Run(name(amr), func(b *testing.B) {
			var density int
			for i := 0; i < b.N; i++ {
				density = transfer.AdjacencyDensity(rg, ids, amr)
			}
			b.ReportMetric(float64(density), "simgraph-edges")
		})
	}
}

func name(amr float64) string {
	switch amr {
	case 0.5:
		return "amr0.5"
	case 0.7:
		return "amr0.7"
	default:
		return "amr0.9"
	}
}

// BenchmarkAblationLearnerSampleCap measures preference-learning cost
// versus the per-T-edge path-sample cap (the MaxPaths knob).
func BenchmarkAblationLearnerSampleCap(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	rg := r.RegionGraph()
	var paths []roadnet.Path
	for _, e := range rg.Edges {
		if e.Kind != region.TEdge {
			continue
		}
		for _, pi := range e.PathsFwd {
			paths = append(paths, pi.Path)
		}
		if len(paths) >= 24 {
			break
		}
	}
	if len(paths) < 8 {
		b.Skip("not enough paths")
	}
	for _, cap := range []int{2, 8, 24} {
		cap := cap
		b.Run(capName(cap), func(b *testing.B) {
			l := pref.NewLearner(w.Road)
			l.MaxPaths = cap
			for i := 0; i < b.N; i++ {
				l.Learn(paths)
			}
		})
	}
}

func capName(c int) string {
	switch c {
	case 2:
		return "cap2"
	case 8:
		return "cap8"
	default:
		return "cap24"
	}
}

// BenchmarkSparseCG isolates the Eq. 3 linear-algebra kernel.
func BenchmarkSparseCG(b *testing.B) {
	const n = 500
	var coords []sparse.Coord
	for i := 0; i < n-1; i++ {
		coords = append(coords,
			sparse.Coord{Row: i, Col: i + 1, Val: 0.8},
			sparse.Coord{Row: i + 1, Col: i, Val: 0.8})
	}
	adj := sparse.New(n, coords)
	lap := sparse.Laplacian(adj)
	var sc []sparse.Coord
	for i := 0; i < n/4; i++ {
		sc = append(sc, sparse.Coord{Row: i, Col: i, Val: 1})
	}
	a := sparse.AddScaled(sparse.New(n, sc), 1.0, lap, 0.01)
	rhs := make([]float64, n)
	for i := 0; i < n/4; i++ {
		rhs[i] = 1
	}
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		sparse.CG(a, x, rhs, 1e-8, 2000)
	}
}

// BenchmarkMapMatch measures the HMM map matcher on simulated feeds.
func BenchmarkMapMatch(b *testing.B) {
	w := benchWorld(b)
	idx := benchIndex(w)
	m := benchMatcher(w, idx)
	var pts [][]geo.Point
	for _, t := range w.Train[:min(40, len(w.Train))] {
		ps := make([]geo.Point, len(t.Records))
		for i, rec := range t.Records {
			ps[i] = rec.P
		}
		pts = append(pts, ps)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(pts[i%len(pts)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Extension benches -------------------------------------------------------

// BenchmarkAblationCH compares contraction-hierarchy queries against
// plain Dijkstra on the bench world (the paper's deferred speed-up).
func BenchmarkAblationCH(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.CHSpeedup(w))
	h := ch.Build(w.Road, roadnet.TT, ch.Config{})
	q := ch.NewQuery(h)
	eng := route.NewEngine(w.Road)
	qs := benchQueries(b)
	b.Run("CH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := qs[i%len(qs)]
			q.Cost(p.S, p.D)
		}
	})
	b.Run("Dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := qs[i%len(qs)]
			eng.Route(p.S, p.D, roadnet.TT)
		}
	})
}

// BenchmarkAblationClusteringMethod compares the paper's clustering
// against the two related-work methods of Section II.
func BenchmarkAblationClusteringMethod(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.AblationClustering(w))
	paths := make([]roadnet.Path, 0, len(w.Train))
	for _, t := range w.Train {
		paths = append(paths, t.Truth)
	}
	b.Run("Modularity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tg := cluster.BuildTrajectoryGraph(w.Road, paths)
			cluster.Cluster(tg, cluster.Options{})
		}
	})
	b.Run("Grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.GridCluster(w.Road, paths, cluster.GridClusterOptions{})
		}
	})
	b.Run("Hierarchy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.HierarchyPartition(w.Road, paths, cluster.HierarchyPartitionOptions{})
		}
	})
}

// BenchmarkSplice measures the Case-1/2 splicing baseline and logs the
// coverage analysis that motivates Case 3.
func BenchmarkSplice(b *testing.B) {
	w := benchWorld(b)
	b.Log(exp.CaseCoverage(w))
	mpr := splice.NewMPR(w.Road, w.Train)
	qs := benchQueries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpr.Route(qs[i%len(qs)].Query)
	}
}

// BenchmarkPersistence measures router save/load round trips — the
// artifact path a deployment takes instead of re-running the offline
// build.
func BenchmarkPersistence(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	var size int
	b.Run("Save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := r.Save(&buf); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
		}
		b.ReportMetric(float64(size), "bytes")
	})
	var artifact bytes.Buffer
	if err := r.Save(&artifact); err != nil {
		b.Fatal(err)
	}
	raw := artifact.Bytes()
	b.Run("Load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Load(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngest measures incremental trajectory ingestion throughput.
func BenchmarkIngest(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	batch := w.Test
	if len(batch) > 50 {
		batch = batch[:50]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// DeepClone, not Clone: Ingest mutates the region graph, which a
		// shallow clone shares with the cached benchmark router — later
		// benchmarks would measure a polluted world.
		clone := r.DeepClone()
		b.StartTimer()
		clone.Ingest(batch, core.IngestOptions{SkipMapMatching: true})
	}
}

// --- PathEngine backends ---------------------------------------------------

// BenchmarkFastestDijkstra measures uncached scalar fastest-path
// queries on the plain Dijkstra PathEngine — the primitive behind
// Case 2 approach searches, fastest fallbacks and null-preference
// connectors on the serving hot path.
func BenchmarkFastestDijkstra(b *testing.B) {
	w := benchWorld(b)
	qs := benchQueries(b)
	var eng route.PathEngine = route.NewEngine(w.Road)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		eng.Fastest(q.S, q.D)
	}
}

// BenchmarkFastestCH measures the same uncached queries on the
// CH-backed PathEngine (hierarchy preprocessed outside the timer,
// shortcut unpacking included). The ratio to BenchmarkFastestDijkstra
// is the speed-up the serving layer gains per uncached fastest-path
// search when -path-engine=ch.
func BenchmarkFastestCH(b *testing.B) {
	w := benchWorld(b)
	qs := benchQueries(b)
	var eng route.PathEngine = route.BuildCHEngine(w.Road, roadnet.TT, ch.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		eng.Fastest(q.S, q.D)
	}
}

// BenchmarkServe measures online serving throughput on a Zipf-skewed
// query mix — the scale-free popularity profile of real road traffic,
// where a few hot OD pairs dominate. Three configurations:
//
//   - RouterDirect: the uncached single-caller core.Router.Route every
//     pre-serving caller used — the baseline the serving subsystem must
//     beat.
//   - EngineColdCache: the serve engine with caching disabled, queried
//     concurrently (measures snapshot/clone-pool overhead plus
//     parallel speed-up).
//   - EngineWarmCache: the serve engine with its route cache warm on
//     the same Zipf mix — the steady state of a hot serving shard.
//
// The *CH variants rerun the uncached configurations with the
// contraction-hierarchy path backend, so the speed-up of the pluggable
// engine is measured end to end through the serving stack.
func BenchmarkServe(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	chRouter := r.DeepClone()
	chRouter.EnableCH(ch.Config{})
	qs := benchQueries(b)

	// Pre-draw a deterministic Zipf-ranked index stream: rank 0 (the
	// hottest OD pair) is geometrically more popular than rank 1, etc.
	rng := rand.New(rand.NewSource(benchSeed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(qs)-1))
	mix := make([]int, 8192)
	for i := range mix {
		mix[i] = int(zipf.Uint64())
	}

	b.Run("RouterDirect", func(b *testing.B) {
		single := r.Clone()
		for i := 0; i < b.N; i++ {
			q := qs[mix[i%len(mix)]]
			single.Route(q.S, q.D)
		}
	})

	b.Run("RouterDirectCH", func(b *testing.B) {
		single := chRouter.Clone()
		for i := 0; i < b.N; i++ {
			q := qs[mix[i%len(mix)]]
			single.Route(q.S, q.D)
		}
	})

	b.Run("EngineColdCache", func(b *testing.B) {
		e := serve.NewEngine(r.DeepClone(), serve.Options{CacheSize: -1})
		var next int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&next, 1))
				q := qs[mix[i%len(mix)]]
				e.Route(q.S, q.D)
			}
		})
	})

	b.Run("EngineColdCacheCH", func(b *testing.B) {
		e := serve.NewEngine(chRouter.DeepClone(), serve.Options{CacheSize: -1})
		var next int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&next, 1))
				q := qs[mix[i%len(mix)]]
				e.Route(q.S, q.D)
			}
		})
	})

	// Coalescing: duplicate-heavy traffic hitting *cold* keys — a herd
	// of parallel goroutines walks the query list in windows of 64, so
	// every fresh OD pair is requested by many goroutines at once
	// before any cache entry exists. The computes/od metric is the
	// collapse: ~1 route computation per unique OD with singleflight
	// (the default). The NoCoalesce contrast needs real parallelism to
	// stampede — on GOMAXPROCS=1 the serialized herd is absorbed by the
	// cache alone and both variants report ~1.
	for _, variant := range []struct {
		name       string
		noCoalesce bool
	}{{"EngineColdHerdCoalesce", false}, {"EngineColdHerdNoCoalesce", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			e := serve.NewEngine(r.DeepClone(), serve.Options{
				CacheSize:  1 << 16,
				NoCoalesce: variant.noCoalesce,
			})
			var next int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(atomic.AddInt64(&next, 1)) - 1
					q := qs[(i/64)%len(qs)]
					e.Route(q.S, q.D)
				}
			})
			b.StopTimer()
			uniques := (b.N + 63) / 64
			if uniques > len(qs) {
				uniques = len(qs)
			}
			st := e.Stats()
			b.ReportMetric(float64(st.RouteComputations)/float64(uniques), "computes/od")
			b.ReportMetric(float64(st.CoalescedQueries), "coalesced")
		})
	}

	b.Run("EngineWarmCache", func(b *testing.B) {
		e := serve.NewEngine(r.DeepClone(), serve.Options{CacheSize: 1 << 15})
		for _, i := range mix {
			e.Route(qs[i].S, qs[i].D)
		}
		warm := e.Stats() // exclude warm-up misses from the reported rate
		b.ResetTimer()
		var next int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&next, 1))
				q := qs[mix[i%len(mix)]]
				e.Route(q.S, q.D)
			}
		})
		b.StopTimer()
		st := e.Stats()
		hits := st.CacheHits - warm.CacheHits
		if total := hits + st.CacheMisses - warm.CacheMisses; total > 0 {
			b.ReportMetric(100*float64(hits)/float64(total), "hit%")
		}
	})
}

// BenchmarkFleet measures multi-tenant serving: the per-query cost of
// tenant lookup + engine dispatch with several worlds behind one
// registry, and the hot-swap (Publish) that replaces one tenant's
// artifact under traffic.
func BenchmarkFleet(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	qs := benchQueries(b)
	tenants := []string{"acity", "bcity", "ccity"}

	newFleet := func(b *testing.B) *serve.Fleet {
		f := serve.NewFleet(serve.Options{CacheSize: 1 << 14})
		for _, name := range tenants {
			if _, err := f.Add(name, r.DeepClone()); err != nil {
				b.Fatal(err)
			}
		}
		return f
	}

	b.Run("RouteAcrossTenants", func(b *testing.B) {
		f := newFleet(b)
		var next int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&next, 1))
				e, ok := f.Get(tenants[i%len(tenants)])
				if !ok {
					b.Error("tenant lookup failed")
					return
				}
				q := qs[i%len(qs)]
				e.Route(q.S, q.D)
			}
		})
	})

	b.Run("HotSwapUnderTraffic", func(b *testing.B) {
		f := newFleet(b)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					e, _ := f.Get(tenants[g%len(tenants)])
					q := qs[(i*13+g)%len(qs)]
					e.Route(q.S, q.D)
				}
			}(g)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Publish("acity", r.DeepClone()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkStream measures the streaming GPS ingestion pipeline end
// to end — sessionization, windowed online map matching and adaptive
// batching into a live engine — against the one-swap-per-trajectory
// ingestion the HTTP /ingest path performs at equal trajectory
// volume. The swaps/traj metric is the amortization: the pipeline
// batches MaxBatch trajectories per copy-on-write snapshot swap
// (~1/32 here), where per-trajectory ingestion reports 1.
func BenchmarkStream(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	live := w.Test
	if len(live) > 120 {
		live = live[:120]
	}
	pts := stream.PointsFrom(live, true)

	b.Run("Pipeline", func(b *testing.B) {
		var swaps, trajs, points float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := serve.NewEngine(r.DeepClone(), serve.Options{CacheSize: -1})
			b.StartTimer()
			ing := stream.Attach(e, stream.Config{
				Match:    mapmatch.Config{SigmaM: 15},
				MaxBatch: 32,
				FlushAge: time.Hour, // count-driven; Close drains the tail
			})
			ing.PushAll(pts)
			ing.Close()
			b.StopTimer()
			st := e.Stats()
			swaps += float64(st.Ingests)
			trajs += float64(st.IngestedTrajectories)
			points += float64(len(pts))
			b.StartTimer()
		}
		b.StopTimer()
		if trajs > 0 {
			b.ReportMetric(swaps/trajs, "swaps/traj")
			b.ReportMetric(points/trajs, "points/traj")
		}
	})

	b.Run("PerTrajectorySwap", func(b *testing.B) {
		// The /ingest baseline: every trajectory pays its own deep-clone
		// snapshot swap (paths pre-matched, so only the swap differs).
		b.StopTimer()
		e := serve.NewEngine(r.DeepClone(), serve.Options{
			CacheSize: -1,
			Ingest:    core.IngestOptions{SkipMapMatching: true},
		})
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			e.Ingest(live[i%len(live) : i%len(live)+1])
		}
		b.StopTimer()
		st := e.Stats()
		b.ReportMetric(float64(st.Ingests)/float64(st.IngestedTrajectories), "swaps/traj")
	})
}

// BenchmarkServeIngest measures the copy-on-write ingest swap — the
// price of keeping the served router current without blocking queries.
func BenchmarkServeIngest(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter()
	batch := w.Test
	if len(batch) > 50 {
		batch = batch[:50]
	}
	e := serve.NewEngine(r.DeepClone(), serve.Options{
		// Match BenchmarkIngest: measure the clone-and-swap itself, not
		// re-map-matching the batch.
		Ingest: core.IngestOptions{SkipMapMatching: true},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(batch)
	}
}

// --- Customizable CH: re-customization and swap cost -----------------------

// BenchmarkCustomize measures the two phases of the customizable
// hierarchy separately: the one-time metric-independent contraction
// (Contract) and the per-metric weight pass over the fixed skeleton
// (Customize). Their ratio is why the serving swap path re-customizes
// instead of re-contracting: a metric refresh costs one bottom-up
// triangle sweep over preallocated flat arrays.
func BenchmarkCustomize(b *testing.B) {
	w := benchWorld(b)
	b.Run("Contract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildTopology(w.Road)
		}
	})
	b.Run("Customize", func(b *testing.B) {
		topo := ch.BuildTopology(w.Road)
		m := topo.NewMetric()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Customize(func(e roadnet.EdgeID) float64 { return w.Road.EdgeWeight(e, roadnet.TT) })
		}
		b.ReportMetric(float64(topo.NumArcs()), "arcs")
	})
}

// BenchmarkSwapCost measures the per-ingest snapshot swap overhead —
// everything serve.Engine.ingestDurable does to turn a batch into a
// servable generation beyond applying the batch itself — under both
// clone strategies:
//
//   - DeepClone: the old write path — deep-copy every region edge's
//     stored path sets before ingesting.
//   - Recustomize: the current write path — copy-on-write clone
//     (IngestClone, outer slice headers only) plus re-customization of
//     whatever CH metrics the batch's re-learned preferences introduced.
//
// Applying the batch (Ingest) is identical work in both variants and
// runs outside the timer. The ratio is the swap-cost collapse: the old
// path paid O(everything ever stored) per batch, the new one O(batch).
func BenchmarkSwapCost(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter().DeepClone()
	r.EnableCH(ch.Config{})
	batch := w.Test
	if len(batch) > 20 {
		batch = batch[:20]
	}
	// The swap phases are timed manually and reported as the override
	// ns/op (StopTimer/StartTimer around the untimed Ingest would cost
	// more in ReadMemStats than the phases being measured).
	opt := core.IngestOptions{SkipMapMatching: true}
	b.Run("DeepClone", func(b *testing.B) {
		var swap time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			next := r.DeepClone()
			swap += time.Since(t0)
			next.Ingest(batch, opt)
		}
		b.ReportMetric(float64(swap.Nanoseconds())/float64(b.N), "ns/op")
	})
	b.Run("Recustomize", func(b *testing.B) {
		var swap time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			next := r.IngestClone()
			swap += time.Since(t0)
			st := next.Ingest(batch, opt)
			t1 := time.Now()
			next.PrepareMetricsTouched(st.TouchedEdges)
			swap += time.Since(t1)
		}
		b.ReportMetric(float64(swap.Nanoseconds())/float64(b.N), "ns/op")
	})
}

// BenchmarkRouteP99 measures end-to-end route latency on the CH-backed
// router and reports the tail (p99-ns) alongside the mean — the number
// the CI regression guard tracks, since customization regressions that
// push cold metrics inline show up in the tail first.
func BenchmarkRouteP99(b *testing.B) {
	w := benchWorld(b)
	r := w.MustRouter().DeepClone()
	r.EnableCH(ch.Config{})
	single := r.Clone()
	qs := benchQueries(b)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		t0 := time.Now()
		single.Route(q.S, q.D)
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	}
}

// BenchmarkRoutePrefCH measures preference-restricted queries
// (RoutePref, the Algorithm 2 hot path) on the hierarchy versus plain
// Dijkstra. The CH variant resolves the slave predicate to a road-type
// mask and queries a pre-customized metric; allocs/op verifies the
// per-fork scratch reuse — steady state allocates only the returned
// path.
func BenchmarkRoutePrefCH(b *testing.B) {
	w := benchWorld(b)
	qs := benchQueries(b)
	master := roadnet.TT
	slave := func(t roadnet.RoadType) bool { return t != roadnet.Motorway }
	che := route.BuildCHEngine(w.Road, master, ch.Config{})
	dij := route.NewEngine(w.Road)
	b.Run("CH", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			che.RoutePref(q.S, q.D, master, slave)
		}
	})
	b.Run("Dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			dij.RoutePref(q.S, q.D, master, slave)
		}
	})
}

// BenchmarkAblationMu sweeps the Eq. 2 hyper-parameters.
func BenchmarkAblationMu(b *testing.B) {
	w := benchWorld(b)
	w.MustRouter()
	b.Log(exp.AblationMu(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationMuCompute(w); err != nil {
			b.Skip(err)
		}
	}
}
