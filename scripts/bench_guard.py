#!/usr/bin/env python3
"""Gate a fresh benchmark report against a committed baseline.

Usage: bench_guard.py BASELINE.json FRESH.json [RATIO]

Both files hold {bench: {metric: value}} maps — the format of the
committed BENCH_route.json and BENCH_serve.json baselines. Every
benchmark key in the baseline must exist in the fresh report, and every
gated metric must stay within RATIO (default 2.0) of its committed
value:

  lower-is-better  ns_per_op, *_ns / *-ns, B/op / *bytes_per_op,
                   allocs/op / *allocs_per_op  -> fail if fresh > RATIO * base
  higher-is-better *qps*, *per_sec             -> fail if fresh < base / RATIO
  accuracy (pct)   *_acc_pct, *_score_pct      -> fail if fresh drops more
                   than PCT_DROP points below base (ratios are meaningless
                   for a bounded 0-100 scale; model quality regressions
                   must be caught long before "half as good")

Everything else (counts, sizes, metadata) is informational. Two escape
hatches keep the gate honest instead of flaky:

  * noise floors: timing metrics under 1 microsecond, allocation
    metrics under a few units — too small for a ratio to mean anything;
  * single-sample metrics (customize_ns, swap_ns: the *last* ingest's
    cost, not an aggregate) are reported but never gated.

Exit status 1 on any regression, 2 on malformed input.
"""

import json
import sys

# Last-sample measurements: one ingest's (or one maintenance
# rebuild's) cost, not a distribution.
INFORMATIONAL = {"customize_ns", "swap_ns", "maint_rebuild_ns"}

# (metric, floor): baselines below the floor are too small to gate.
NS_FLOOR = 1000.0      # 1 us: sub-microsecond timings are scheduler noise
BYTES_FLOOR = 64.0
ALLOCS_FLOOR = 2.0
PCT_FLOOR = 5.0        # accuracy percentages under 5% are all noise
PCT_DROP = 10.0        # allowed accuracy drop in absolute points


def classify(key):
    """Return (direction, floor) for a metric key, or (None, 0)."""
    if key in INFORMATIONAL:
        return None, 0.0
    if key == "ns_per_op" or key.endswith("_ns") or key.endswith("-ns"):
        return "lower", NS_FLOOR
    if key == "B/op" or key.endswith("bytes_per_op"):
        return "lower", BYTES_FLOOR
    if key == "allocs/op" or key.endswith("allocs_per_op"):
        return "lower", ALLOCS_FLOOR
    if key.endswith("_acc_pct") or key.endswith("_score_pct"):
        # Model-quality percentages (shadow-score accuracy): regressions
        # mean the served routes drifted from the driven evidence.
        return "higher_pct", PCT_FLOOR
    if "qps" in key or key.endswith("per_sec"):
        return "higher", 0.0
    return None, 0.0


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)
    ratio = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failures = []
    gated = 0
    for bench in sorted(base):
        bmetrics = base[bench]
        fmetrics = fresh.get(bench)
        if fmetrics is None:
            failures.append("%s: missing from fresh report" % bench)
            continue
        for key in sorted(bmetrics):
            bv = bmetrics[key]
            direction, floor = classify(key)
            if direction is None or isinstance(bv, bool) or not isinstance(bv, (int, float)):
                continue
            fv = fmetrics.get(key)
            if not isinstance(fv, (int, float)) or isinstance(fv, bool):
                failures.append("%s.%s: missing from fresh report" % (bench, key))
                continue
            if bv < floor:
                print("skip %s.%s: baseline %g under noise floor %g" % (bench, key, bv, floor))
                continue
            gated += 1
            if direction == "lower" and fv > ratio * bv:
                failures.append("%s.%s: %g exceeds %gx committed baseline %g"
                                % (bench, key, fv, ratio, bv))
            elif direction == "higher" and fv < bv / ratio:
                failures.append("%s.%s: %g is below 1/%g of committed baseline %g"
                                % (bench, key, fv, ratio, bv))
            elif direction == "higher_pct" and fv < bv - PCT_DROP:
                failures.append("%s.%s: %g dropped more than %g points below committed baseline %g"
                                % (bench, key, fv, PCT_DROP, bv))
            else:
                print("ok   %s.%s: %g (baseline %g)" % (bench, key, fv, bv))
    if gated == 0:
        failures.append("no gated metrics found: baseline/fresh format mismatch?")
    if failures:
        print("\nREGRESSION vs committed baseline (%s):" % sys.argv[1])
        for f in failures:
            print("  " + f)
        return 1
    print("\nall %d gated metrics within %gx of baseline" % (gated, ratio))
    return 0


if __name__ == "__main__":
    sys.exit(main())
