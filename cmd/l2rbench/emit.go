package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/maint"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/worldgen"
)

// runBench is the measurement mode: replay the schedule against a live
// engine, then emit the BENCH_serve.json report.
func runBench(h *harness) error {
	cfg := h.cfg
	walDir := ""
	if cfg.durable {
		dir, err := os.MkdirTemp("", "l2rbench-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}

	// The engine ingests via copy-on-write clones, but recovery below
	// needs a pristine base router; clone before handing ours over.
	var recoveryBase = h.router
	if cfg.durable {
		recoveryBase = h.router.DeepClone()
	}
	var (
		e   *serve.Engine
		err error
	)
	if cfg.durable {
		e, err = serve.NewDurableEngine(h.router, cfg.serveOptions(walDir))
	} else {
		e = serve.NewEngine(h.router, cfg.serveOptions(""))
	}
	if err != nil {
		return err
	}
	// Shadow-score every ingested trajectory (rate 1, unthrottled, deep
	// queue) so the committed baseline carries model-quality accuracy
	// keys the bench guard can gate alongside the latency numbers.
	qobs := quality.Attach(e, quality.Config{SampleRate: 1, Queue: 1 << 14, MaxPerSec: -1, Ring: 8})
	defer qobs.Close()

	newExec := h.newInprocExec(e)
	mode := "in-process"
	if cfg.http {
		base, shutdown, serr := httpServer(e)
		if serr != nil {
			return serr
		}
		defer shutdown()
		newExec = newHTTPExec(base)
		mode = "http " + base
	}

	workers := cfg.effectiveWorkers()
	log.Printf("replaying %d requests (%s) via %s, %d workers, qps target %g",
		len(h.schedule), scheduleSummary(h.schedule), mode, workers, cfg.qps)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rs := newReplayStats()
	replay(h.schedule, workers, cfg.qps, rs, newExec)
	runtime.ReadMemStats(&after)
	qobs.Drain()

	st := e.Stats()
	log.Printf("replayed in %v: %.0f req/s, %d errors, cache hit rate %.2f, %d ingest swaps (gen %d)",
		rs.elapsed.Round(time.Millisecond), float64(len(h.schedule))/rs.elapsed.Seconds(),
		rs.errs.Load(), st.CacheHitRate, st.Ingests, st.SnapshotGeneration)

	report := buildReport(h, rs, st, &before, &after)
	if cfg.durable {
		// Simulated crash: abandon the engine without Close and time a
		// cold NewDurableEngine recovery over its WAL directory.
		t0 := time.Now()
		rec, rerr := serve.NewDurableEngine(recoveryBase, cfg.serveOptions(walDir))
		if rerr != nil {
			return rerr
		}
		d := time.Since(t0)
		ds := rec.Stats().Durability
		m := map[string]any{
			"recovery_ns":        float64(d.Nanoseconds()),
			"replayed_records":   float64(ds.ReplayedRecords),
			"replayed_trajs":     float64(ds.ReplayedTrajectories),
			"wal_bytes":          float64(ds.WALBytes),
			"records_per_sec":    float64(0),
			"recovered_via_ckpt": b2f(ds.RecoveredFromCheckpoint),
		}
		if d > 0 {
			m["records_per_sec"] = float64(ds.ReplayedRecords) / d.Seconds()
		}
		report["l2rbench_recovery"] = m
		log.Printf("recovery: %d WAL records replayed in %v (%.0f records/s)",
			ds.ReplayedRecords, d.Round(time.Millisecond), m["records_per_sec"])
		rec.Close()
	}

	if err := maintPhase(h, e, report); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return writeReport(cfg.out, data)
}

// buildReport shapes the committed-baseline JSON: one top-level key per
// workload kind plus engine-side counters, each a flat metric map the
// shared bench guard can gate, and a meta section pinning the world
// the numbers were measured on.
func buildReport(h *harness, rs *replayStats, st serve.Stats, before, after *runtime.MemStats) map[string]map[string]any {
	report := make(map[string]map[string]any)
	report["l2rbench_meta"] = map[string]any{
		"scale":             h.world.Spec.Name,
		"seed":              h.cfg.seed,
		"world_fingerprint": fmt.Sprintf("%016x", worldgen.Fingerprint(h.world.Road)),
		"vertices":          h.world.Road.NumVertices(),
		"edges":             h.world.Road.NumEdges(),
		"trips":             len(h.world.All),
		"workers":           h.cfg.effectiveWorkers(),
	}
	for k := range rs.hists {
		n := rs.ops[k].Load()
		if n == 0 {
			continue
		}
		hist := rs.hists[k]
		m := map[string]any{
			"ops":     float64(n),
			"p50_ns":  float64(hist.Quantile(0.50).Nanoseconds()),
			"p99_ns":  float64(hist.Quantile(0.99).Nanoseconds()),
			"p999_ns": float64(hist.Quantile(0.999).Nanoseconds()),
			"mean_ns": float64(hist.Mean().Nanoseconds()),
		}
		if rs.elapsed > 0 {
			m["qps"] = float64(n) / rs.elapsed.Seconds()
		}
		report["l2rbench_"+opNames[k]] = m
	}
	total := uint64(len(h.schedule))
	eng := map[string]any{
		"requests":           float64(total),
		"errors":             float64(rs.errs.Load()),
		"qps":                float64(total) / rs.elapsed.Seconds(),
		"route_computations": float64(st.RouteComputations),
		"coalesced":          float64(st.CoalescedQueries),
		"cache_hit_pct":      100 * st.CacheHitRate,
		"generations":        float64(st.SnapshotGeneration),
		"customize_ns":       float64(st.CustomizeLag.Nanoseconds()),
		"swap_ns":            float64(st.SwapLag.Nanoseconds()),
	}
	if total > 0 {
		eng["allocs_per_op"] = float64(after.Mallocs-before.Mallocs) / float64(total)
		eng["bytes_per_op"] = float64(after.TotalAlloc-before.TotalAlloc) / float64(total)
	}
	report["l2rbench_engine"] = eng
	if q := st.Quality; q != nil && q.Total.Scores > 0 {
		report["l2rbench_quality"] = map[string]any{
			"shadow_scores":       float64(q.Total.Scores),
			"shadow_dropped":      float64(q.Dropped),
			"shadow_eq1_acc_pct":  q.Total.Eq1Pct,
			"shadow_eq4_acc_pct":  q.Total.Eq4Pct,
			"drift_tv":            q.DriftTV,
			"region_coverage_pct": 100 * q.RegionCoverage,
		}
	}
	return report
}

// maintPhase is the maintenance benchmark: attach the background
// maintainer to the engine that just served the replay, drive one
// manual clone-rebuild-publish cycle over every trajectory the replay
// ingested, and re-score the rebuilt snapshot's routes against the
// held-out driven paths. maint_rebuild_ns is a single-sample wall
// measurement (informational in the bench guard, like customize_ns);
// shadow_eq1_acc_pct/shadow_eq4_acc_pct are gated accuracy floors —
// a rebuild is only worth its latency if the model it publishes still
// matches the evidence.
func maintPhase(h *harness, e *serve.Engine, report map[string]map[string]any) error {
	mt := maint.Attach(e, maint.Config{
		CheckEvery: time.Hour, // manual trigger only
		Core: core.Options{
			SkipMapMatching: true,
			PathBackend:     backendFor(h.cfg.pathEngine),
		},
	})
	defer mt.Close()

	t0 := time.Now()
	rst, err := mt.TriggerNow(context.Background())
	if err != nil {
		return fmt.Errorf("maintenance rebuild: %w", err)
	}
	wall := time.Since(t0)

	// Post-rebuild accuracy over the held-out test trips: route each
	// trajectory's OD on the rebuilt snapshot and score the answer
	// against the driven path (the same Eq. 1 / Eq. 4 the shadow scorer
	// applies online).
	var eq1Sum, eq4Sum float64
	scored := 0
	for _, tr := range h.world.Test {
		if scored >= 512 {
			break
		}
		if len(tr.Truth) < 2 {
			continue
		}
		res, _ := e.Route(tr.Source(), tr.Destination())
		if len(res.Path) == 0 {
			continue
		}
		eq1, eq4 := eval.ScorePath(h.world.Road, tr.Truth, res.Path)
		eq1Sum += eq1
		eq4Sum += eq4
		scored++
	}

	st := mt.MaintStats()
	m := map[string]any{
		"maint_rebuild_ns":    float64(wall.Nanoseconds()),
		"maint_tedges_added":  float64(st.LastTEdgesAdded),
		"maint_tedges":        float64(rst.TEdges),
		"maint_bedges":        float64(rst.BEdges),
		"maint_learned_prefs": float64(rst.LearnedPrefs),
		"maint_transferred":   float64(rst.Transferred),
		"rebuilds":            float64(st.Rebuilds),
	}
	if scored > 0 {
		m["shadow_eq1_acc_pct"] = 100 * eq1Sum / float64(scored)
		m["shadow_eq4_acc_pct"] = 100 * eq4Sum / float64(scored)
	}
	report["l2rbench_maint"] = m
	log.Printf("maintenance: rebuild in %v (%d T-edges, %d added, %d prefs), post-rebuild eq1 %.1f%% over %d ODs",
		wall.Round(time.Millisecond), rst.TEdges, st.LastTEdgesAdded, rst.LearnedPrefs,
		100*eq1Sum/float64(maxInt(scored, 1)), scored)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
