package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/roadnet"
	"repro/internal/serve"
)

// runAudit is the correctness mode: the workload's whole point is that
// a seed pins the system's answers, so prove it. Three engines see the
// same deterministic schedule — A and B replay it independently from
// scratch, C recovers from A's abandoned WAL directory (a simulated
// crash: A is never Closed) — and all three must return identical
// routes, categories and evidence for a fixed OD set.
func runAudit(h *harness) error {
	cfg := h.cfg
	if cfg.http {
		log.Printf("audit runs in-process; ignoring -http")
	}
	ods := auditODs(h.queries, cfg.auditODs)
	if len(ods) < cfg.auditODs {
		return fmt.Errorf("audit needs %d distinct ODs but the pool has %d; raise -trips or -scale",
			cfg.auditODs, len(ods))
	}
	log.Printf("audit: %d requests replayed sequentially, %d ODs evaluated per engine",
		len(h.schedule), len(ods))

	dirA, err := os.MkdirTemp("", "l2rbench-audit-a-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "l2rbench-audit-b-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirB)

	ansA, err := h.auditRun("A", dirA, ods)
	if err != nil {
		return err
	}
	ansB, err := h.auditRun("B", dirB, ods)
	if err != nil {
		return err
	}
	seedDiffs := diffAnswers(ansA, ansB, ods)
	reportDiffs("seed replay (A vs B)", seedDiffs)

	// Crash recovery: rebuild from A's WAL; answers must match without
	// replaying the live workload at all.
	t0 := time.Now()
	rec, err := serve.NewDurableEngine(h.router.DeepClone(), cfg.serveOptions(dirA))
	if err != nil {
		return fmt.Errorf("recovery from %s: %w", dirA, err)
	}
	ds := rec.Stats().Durability
	log.Printf("engine C recovered %d WAL trajectories in %v (checkpoint: %v)",
		ds.ReplayedTrajectories, time.Since(t0).Round(time.Millisecond), ds.RecoveredFromCheckpoint)
	ansC := evaluate(rec, ods)
	rec.Close()
	recDiffs := diffAnswers(ansA, ansC, ods)
	reportDiffs("crash recovery (A vs C)", recDiffs)

	if cfg.out != "" {
		report := map[string]any{"l2rbench_audit": map[string]any{
			"ods":                 len(ods),
			"requests":            len(h.schedule),
			"seed_mismatches":     len(seedDiffs),
			"recovery_mismatches": len(recDiffs),
			"pass":                len(seedDiffs) == 0 && len(recDiffs) == 0,
		}}
		data, merr := json.MarshalIndent(report, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := writeReport(cfg.out, append(data, '\n')); werr != nil {
			return werr
		}
	}
	if len(seedDiffs)+len(recDiffs) > 0 {
		return fmt.Errorf("audit FAILED: %d seed-replay + %d recovery mismatches",
			len(seedDiffs), len(recDiffs))
	}
	log.Printf("audit PASS: %d ODs identical across seed replay and crash recovery", len(ods))
	return nil
}

// auditRun replays the schedule sequentially on a fresh durable engine
// and evaluates the audit ODs. The engine is deliberately not Closed —
// its WAL directory is left exactly as a crash would leave it.
func (h *harness) auditRun(name, walDir string, ods [][2]roadnet.VertexID) ([]auditAnswer, error) {
	e, err := serve.NewDurableEngine(h.router.DeepClone(), h.cfg.serveOptions(walDir))
	if err != nil {
		return nil, fmt.Errorf("engine %s: %w", name, err)
	}
	rs := newReplayStats()
	replay(h.schedule, 1, 0, rs, h.newInprocExec(e))
	st := e.Stats()
	log.Printf("engine %s: %d requests in %v, %d ingest swaps, generation %d",
		name, len(h.schedule), rs.elapsed.Round(time.Millisecond), st.Ingests, st.SnapshotGeneration)
	return evaluate(e, ods), nil
}

// auditODs picks the first n distinct (source, destination) pairs from
// the query pool — deterministic because the pool order is the test
// trajectory order.
func auditODs(qs []eval.Query, n int) [][2]roadnet.VertexID {
	seen := make(map[[2]roadnet.VertexID]bool, n)
	out := make([][2]roadnet.VertexID, 0, n)
	for _, q := range qs {
		od := [2]roadnet.VertexID{q.S, q.D}
		if seen[od] {
			continue
		}
		seen[od] = true
		out = append(out, od)
		if len(out) == n {
			break
		}
	}
	return out
}

// auditAnswer is everything l2rbench asserts equal across engines.
type auditAnswer struct {
	ok   bool
	path roadnet.Path
	cat  core.Category
	ev   core.Evidence
}

func evaluate(e *serve.Engine, ods [][2]roadnet.VertexID) []auditAnswer {
	out := make([]auditAnswer, len(ods))
	for i, od := range ods {
		// The bool return reports cache sharing, which legitimately
		// differs across engines; success is a non-empty path.
		res, _ := e.Route(od[0], od[1])
		out[i] = auditAnswer{ok: len(res.Path) > 0, path: res.Path, cat: res.Category, ev: res.Evidence}
	}
	return out
}

// diffAnswers describes every OD whose two answers differ.
func diffAnswers(a, b []auditAnswer, ods [][2]roadnet.VertexID) []string {
	var diffs []string
	for i := range a {
		x, y := a[i], b[i]
		switch {
		case x.ok != y.ok:
			diffs = append(diffs, fmt.Sprintf("OD %d->%d: found=%v vs %v", ods[i][0], ods[i][1], x.ok, y.ok))
		case x.cat != y.cat:
			diffs = append(diffs, fmt.Sprintf("OD %d->%d: category %v vs %v", ods[i][0], ods[i][1], x.cat, y.cat))
		case x.ev != y.ev:
			diffs = append(diffs, fmt.Sprintf("OD %d->%d: evidence %d vs %d", ods[i][0], ods[i][1], x.ev, y.ev))
		case !samePath(x.path, y.path):
			diffs = append(diffs, fmt.Sprintf("OD %d->%d: paths diverge (%d vs %d vertices)",
				ods[i][0], ods[i][1], len(x.path), len(y.path)))
		}
	}
	return diffs
}

func samePath(a, b roadnet.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func reportDiffs(phase string, diffs []string) {
	if len(diffs) == 0 {
		log.Printf("%s: identical", phase)
		return
	}
	log.Printf("%s: %d MISMATCHES", phase, len(diffs))
	for i, d := range diffs {
		if i == 8 {
			log.Printf("  ... %d more", len(diffs)-8)
			break
		}
		log.Printf("  %s", d)
	}
}
