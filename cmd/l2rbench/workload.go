package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/traj"
	"repro/internal/worldgen"
)

// opKind enumerates workload request kinds.
type opKind int

const (
	opRoute opKind = iota
	opAlt
	opPref
	opIngest
	numOps
)

var opNames = [numOps]string{"route", "alternatives", "pref", "ingest"}

// request is one scheduled workload operation.
type request struct {
	kind  opKind
	s, d  roadnet.VertexID
	k     int
	batch []*traj.Trajectory
}

// harness carries everything one l2rbench run needs across stages.
type harness struct {
	cfg      config
	world    *worldgen.World
	router   *core.Router
	queries  []eval.Query
	schedule []request
}

// parseMix turns "route=55,alternatives=20,pref=15,ingest=10" into
// normalized per-kind shares.
func parseMix(s string) ([numOps]float64, error) {
	var mix [numOps]float64
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return mix, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		var weight float64
		if _, err := fmt.Sscanf(val, "%g", &weight); err != nil || weight < 0 {
			return mix, fmt.Errorf("bad -mix weight %q", val)
		}
		idx := -1
		for k, n := range opNames {
			if n == name || (name == "alt" && opKind(k) == opAlt) {
				idx = k
				break
			}
		}
		if idx < 0 {
			return mix, fmt.Errorf("unknown -mix kind %q (want one of %v)", name, opNames)
		}
		mix[idx] += weight
		total += weight
	}
	if total <= 0 {
		return mix, fmt.Errorf("-mix has no positive weights")
	}
	for k := range mix {
		mix[k] /= total
	}
	return mix, nil
}

// buildSchedule derives the deterministic request stream: OD pairs are
// drawn Zipf-skewed from the test-trajectory query pool (popular ODs
// dominate, exercising the cache and coalescing the way real traffic
// would), kinds by the mix shares, and ingest batches walk the test
// trajectory set in order, cycling if the schedule outruns it.
func buildSchedule(qs []eval.Query, live []*traj.Trajectory, cfg config, mix [numOps]float64) []request {
	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(qs)-1))
	var cum [numOps]float64
	acc := 0.0
	for k := range mix {
		acc += mix[k]
		cum[k] = acc
	}
	sched := make([]request, 0, cfg.requests)
	nextTraj := 0
	for i := 0; i < cfg.requests; i++ {
		q := qs[zipf.Uint64()]
		req := request{kind: opRoute, s: q.S, d: q.D, k: cfg.altK}
		p := rng.Float64()
		for k := range cum {
			if p <= cum[k] {
				req.kind = opKind(k)
				break
			}
		}
		if req.kind == opIngest {
			batch := make([]*traj.Trajectory, 0, cfg.ingestBatch)
			for len(batch) < cfg.ingestBatch {
				batch = append(batch, live[nextTraj%len(live)])
				nextTraj++
			}
			req.batch = batch
		}
		sched = append(sched, req)
	}
	return sched
}

// replayStats aggregates client-side measurements of one replay.
type replayStats struct {
	hists   [numOps]*obs.Histogram
	ops     [numOps]atomic.Uint64
	errs    atomic.Uint64
	elapsed time.Duration
}

func newReplayStats() *replayStats {
	rs := &replayStats{}
	for k := range rs.hists {
		rs.hists[k] = &obs.Histogram{}
	}
	return rs
}

// replay drains the schedule across workers at the target rate. Each
// worker gets its own executor from newExec (per-worker state such as
// a forked preference engine lives in the closure); request latency is
// measured client-side around the executor call.
func replay(sched []request, workers int, qps float64, rs *replayStats, newExec func() func(request) error) {
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exec := newExec()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(sched) {
					return
				}
				if qps > 0 {
					due := start.Add(time.Duration(float64(n) / qps * float64(time.Second)))
					time.Sleep(time.Until(due))
				}
				req := sched[n]
				t0 := time.Now()
				err := exec(req)
				rs.hists[req.kind].Observe(time.Since(t0))
				rs.ops[req.kind].Add(1)
				if err != nil {
					rs.errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	rs.elapsed = time.Since(start)
}

// newInprocExec executes requests directly against the engine; each
// call builds one worker's executor with its own preference fork.
func (h *harness) newInprocExec(e *serve.Engine) func() func(request) error {
	pe := h.prefEngine()
	var mu sync.Mutex // Fork is read-only on the parent but serialize anyway
	return func() func(request) error {
		mu.Lock()
		fork := pe.Fork()
		mu.Unlock()
		return func(req request) error {
			switch req.kind {
			case opRoute:
				// The bool reports cache/coalesce sharing, not success;
				// an empty path means no route.
				if res, _ := e.Route(req.s, req.d); len(res.Path) == 0 {
					return fmt.Errorf("route %d->%d: no path", req.s, req.d)
				}
			case opAlt:
				if res, _ := e.RouteK(req.s, req.d, req.k); len(res) == 0 || len(res[0].Path) == 0 {
					return fmt.Errorf("alternatives %d->%d: no path", req.s, req.d)
				}
			case opPref:
				if _, _, ok := fork.RoutePref(req.s, req.d, roadnet.TT, noMotorway); !ok {
					return fmt.Errorf("pref %d->%d: no path", req.s, req.d)
				}
			case opIngest:
				e.IngestMatched(req.batch)
			}
			return nil
		}
	}
}

func noMotorway(t roadnet.RoadType) bool { return t != roadnet.Motorway }

// httpServer runs the engine's handler on a loopback listener and
// returns the base URL plus a shutdown func.
func httpServer(e *serve.Engine) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: e.Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// newHTTPExec executes requests over the HTTP API. Pref requests never
// reach it — run() folds their share into opRoute in -http mode.
func newHTTPExec(base string) func() func(request) error {
	return func() func(request) error {
		client := &http.Client{Timeout: 30 * time.Second}
		return func(req request) error {
			switch req.kind {
			case opRoute, opPref:
				return httpGet(client, fmt.Sprintf("%s/route?src=%d&dst=%d", base, req.s, req.d))
			case opAlt:
				return httpGet(client, fmt.Sprintf("%s/route/alternatives?src=%d&dst=%d&k=%d", base, req.s, req.d, req.k))
			case opIngest:
				body := struct {
					Paths [][]int `json:"paths"`
				}{Paths: make([][]int, 0, len(req.batch))}
				for _, t := range req.batch {
					p := make([]int, len(t.Truth))
					for i, v := range t.Truth {
						p[i] = int(v)
					}
					body.Paths = append(body.Paths, p)
				}
				buf, err := json.Marshal(body)
				if err != nil {
					return err
				}
				resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(buf))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("ingest: HTTP %d", resp.StatusCode)
				}
			}
			return nil
		}
	}
}

func httpGet(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return nil
}

// scheduleSummary counts scheduled ops per kind for logging.
func scheduleSummary(sched []request) string {
	var counts [numOps]int
	for _, r := range sched {
		counts[r.kind]++
	}
	parts := make([]string, 0, numOps)
	for k, n := range counts {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", opNames[k], n))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
