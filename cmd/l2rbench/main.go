// Command l2rbench is the macro-benchmark harness: it generates a
// deterministic synthetic city (internal/worldgen), builds a router
// over its training trajectories, and replays a Zipf-mixed live
// workload — route lookups, alternative-route queries, preference
// queries and stream-ingest batches — against a serve.Engine, either
// in-process or over loopback HTTP. After the replay (and the timed
// crash-recovery) it runs a maintenance phase: one background
// clone-rebuild-publish cycle (internal/maint) over everything the
// replay ingested, reported as l2rbench_maint — maint_rebuild_ns and
// maint_tedges_added are informational, the post-rebuild
// shadow_eq1_acc_pct / shadow_eq4_acc_pct accuracy floors are gated.
//
// Where bench_test.go measures isolated operations, l2rbench measures
// the serving system: cache and coalescing under skewed OD traffic,
// copy-on-write snapshot swaps racing queries, WAL appends on the
// ingest path, and crash-recovery replay speed. A quality observer
// shadow-scores every ingested trajectory (sample rate 1, unthrottled)
// so the report also carries model-quality accuracy: the
// l2rbench_quality section's shadow_eq1_acc_pct / shadow_eq4_acc_pct
// gate how close served routes stay to the driven evidence. The result
// is a JSON report in the committed-baseline format (BENCH_serve.json)
// that CI regenerates every run and gates against the committed copy
// with scripts/bench_guard.py.
//
// Usage:
//
//	l2rbench [flags]                 run the workload, print the report
//	l2rbench -audit [flags]          run the correctness audit instead
//
// Common invocations:
//
//	l2rbench -scale ci -seed 1 -requests 4000 -out BENCH_serve.new.json
//	l2rbench -scale city -requests 50000 -qps 2000
//	l2rbench -vertices 250000 -trips 20000 -http
//	l2rbench -audit -scale ci -seed 1 -audit-ods 240
//
// Scales name worldgen presets: bench (~130 vertices, the bench_test
// world), ci (~1.5k), city (~25k), metro (~250k), max (~1M). -vertices
// overrides the preset with an explicit target.
//
// The workload is deterministic in (-scale/-vertices, -seed, -requests,
// -zipf, -mix, -ingest-batch): the world, the OD pool, the request
// schedule and the ingest batches are all derived from the seed.
// Timings of course vary run to run; answers do not — that is what
// -audit proves. In -audit mode l2rbench replays the same schedule
// sequentially on two independently built durable engines, evaluates a
// fixed OD set on both, then recovers a third engine from the first
// engine's abandoned WAL directory (a simulated crash: the engine is
// never Closed) and requires all three answer sets to be identical,
// path for path.
//
// Preference queries (RoutePref with a no-motorway restriction) run on
// a per-worker fork of the path engine rather than through the serve
// API, which has no preference endpoint; in -http mode their share is
// folded into plain route requests.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/roadnet"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/worldgen"
)

type config struct {
	scale       string
	vertices    int
	trips       int
	seed        int64
	requests    int
	qps         float64
	workers     int
	zipfS       float64
	altK        int
	ingestBatch int
	mix         string
	http        bool
	pathEngine  string
	cacheSize   int
	durable     bool
	walSync     string
	ckptEvery   int
	out         string
	audit       bool
	auditODs    int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("l2rbench: ")
	var cfg config
	flag.StringVar(&cfg.scale, "scale", "ci", "world scale: bench|ci|city|metro|max")
	flag.IntVar(&cfg.vertices, "vertices", 0, "explicit vertex target (overrides -scale sizing)")
	flag.IntVar(&cfg.trips, "trips", 0, "override simulated trip count (0 = scale default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "world + workload seed")
	flag.IntVar(&cfg.requests, "requests", 4000, "total requests to replay")
	flag.Float64Var(&cfg.qps, "qps", 0, "target request rate (0 = open throttle)")
	flag.IntVar(&cfg.workers, "c", 0, "concurrent workers (0 = GOMAXPROCS; audit always runs 1)")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.2, "Zipf exponent for OD popularity skew")
	flag.IntVar(&cfg.altK, "k", 4, "k for alternative-route requests")
	flag.IntVar(&cfg.ingestBatch, "ingest-batch", 8, "trajectories per ingest request")
	flag.StringVar(&cfg.mix, "mix", "route=55,alternatives=20,pref=15,ingest=10",
		"workload mix as kind=weight pairs")
	flag.BoolVar(&cfg.http, "http", false, "drive the engine over loopback HTTP instead of in-process")
	flag.StringVar(&cfg.pathEngine, "path-engine", "ch", "shortest-path backend: ch|dijkstra")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "route cache entries (0 = serve default, negative disables)")
	flag.BoolVar(&cfg.durable, "durable", true, "attach an ephemeral WAL and measure recovery replay")
	flag.StringVar(&cfg.walSync, "wal-sync", "none", "WAL fsync policy: none|always")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", -1,
		"trajectories between auto checkpoints (negative disables, so recovery replays the full log)")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (default stdout)")
	flag.BoolVar(&cfg.audit, "audit", false, "run the determinism/crash-recovery correctness audit")
	flag.IntVar(&cfg.auditODs, "audit-ods", 240, "OD pairs the audit evaluates (min 200)")
	flag.Parse()

	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg config) error {
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}
	if cfg.http {
		// The HTTP API has no preference endpoint; serve that share as
		// plain route traffic.
		mix[opRoute] += mix[opPref]
		mix[opPref] = 0
	}

	spec, err := resolveSpec(cfg)
	if err != nil {
		return err
	}
	t0 := time.Now()
	w := worldgen.Build(spec)
	log.Printf("world %s seed %d: %d vertices, %d edges, %d trips (%d train / %d test), %d repair links [%v]",
		spec.Name, spec.Seed, w.Road.NumVertices(), w.Road.NumEdges(),
		len(w.All), len(w.Train), len(w.Test), w.RepairLinks, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	r, err := core.Build(w.Road, w.Train, core.Options{
		SkipMapMatching: true,
		PathBackend:     backendFor(cfg.pathEngine),
	})
	if err != nil {
		return fmt.Errorf("router build: %w", err)
	}
	log.Printf("router built [%v]", time.Since(t0).Round(time.Millisecond))

	qs := eval.QueriesFrom(w.Road, r, w.Test)
	if len(qs) < 2 {
		return fmt.Errorf("OD pool too small (%d queries); raise -trips or -scale", len(qs))
	}

	h := &harness{cfg: cfg, world: w, router: r, queries: qs}
	h.schedule = buildSchedule(qs, w.Test, cfg, mix)
	if cfg.audit {
		return runAudit(h)
	}
	return runBench(h)
}

func resolveSpec(cfg config) (worldgen.Spec, error) {
	var spec worldgen.Spec
	if cfg.vertices > 0 {
		spec = worldgen.ForVertices(cfg.vertices, cfg.seed)
	} else {
		var err error
		spec, err = worldgen.ForScale(cfg.scale, cfg.seed)
		if err != nil {
			return spec, err
		}
	}
	if cfg.trips > 0 {
		spec.Sim.Trips = cfg.trips
	}
	return spec, nil
}

func backendFor(name string) core.PathBackend {
	if name == "dijkstra" {
		return core.BackendDijkstra
	}
	return core.BackendCH
}

func (c config) serveOptions(walDir string) serve.Options {
	opt := serve.Options{
		CacheSize:       c.cacheSize,
		PathBackend:     backendFor(c.pathEngine),
		WALDir:          walDir,
		CheckpointEvery: c.ckptEvery,
		WALSync:         wal.SyncNone,
	}
	if c.walSync == "always" {
		opt.WALSync = wal.SyncAlways
	}
	return opt
}

// prefEngine builds the path engine that serves opPref requests; each
// worker Forks it so searches never share scratch state.
func (h *harness) prefEngine() route.PathEngine {
	if backendFor(h.cfg.pathEngine) == core.BackendCH {
		return route.BuildCHEngine(h.world.Road, roadnet.TT, ch.Config{})
	}
	return route.NewEngine(h.world.Road)
}

func (c config) effectiveWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

func writeReport(out string, data []byte) error {
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
