// Command l2rgen generates a synthetic road network and trajectory set
// and writes them to disk in the repository's text formats, so that
// other tools (and curious users) can inspect the data the experiments
// run on.
//
// Usage:
//
//	l2rgen -out dir [-net n1|n2|tiny] [-trips N] [-seed N] [-profile d1|d2]
//
// It writes three files into the output directory:
//
//	network.tsv       vertices and edges of the road network
//	trajectories.tsv  GPS records, one per line, grouped by trip
//	summary.txt       counts and Table II-style distance statistics
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/roadnet"
	"repro/internal/traj"
)

func main() {
	out := flag.String("out", "l2rdata", "output directory")
	network := flag.String("net", "n2", "network config: n1, n2 or tiny")
	trips := flag.Int("trips", 2000, "number of trajectories")
	seed := flag.Int64("seed", 1, "generator seed")
	profile := flag.String("profile", "d2", "trajectory profile: d1 (1 Hz) or d2 (taxi)")
	flag.Parse()

	var g *roadnet.Graph
	switch *network {
	case "n1":
		g = roadnet.Generate(roadnet.N1Like(*seed))
	case "n2":
		g = roadnet.Generate(roadnet.N2Like(*seed))
	case "tiny":
		g = roadnet.Generate(roadnet.Tiny(*seed))
	default:
		fatalf("unknown network %q", *network)
	}
	if err := roadnet.Validate(g); err != nil {
		fatalf("generated network invalid: %v", err)
	}

	var cfg traj.SimConfig
	switch *profile {
	case "d1":
		cfg = traj.D1Like(*seed+1, *trips)
	case "d2":
		cfg = traj.D2Like(*seed+1, *trips)
	default:
		fatalf("unknown profile %q", *profile)
	}
	trajectories := traj.NewSimulator(g, cfg).Run()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("mkdir: %v", err)
	}
	if err := writeNetwork(filepath.Join(*out, "network.tsv"), g); err != nil {
		fatalf("write network: %v", err)
	}
	if err := writeTrajectories(filepath.Join(*out, "trajectories.tsv"), trajectories); err != nil {
		fatalf("write trajectories: %v", err)
	}
	if err := writeSummary(filepath.Join(*out, "summary.txt"), g, trajectories); err != nil {
		fatalf("write summary: %v", err)
	}
	fmt.Printf("wrote %d vertices, %d edges, %d trajectories to %s\n",
		g.NumVertices(), g.NumEdges(), len(trajectories), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func writeNetwork(path string, g *roadnet.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# vertices: id\tx\ty\n")
	for v := roadnet.VertexID(0); int(v) < g.NumVertices(); v++ {
		p := g.Point(v)
		fmt.Fprintf(w, "V\t%d\t%.2f\t%.2f\n", v, p.X, p.Y)
	}
	fmt.Fprintf(w, "# edges: from\tto\tlength_m\ttt_s\tfuel_l\ttype\n")
	for e := roadnet.EdgeID(0); int(e) < g.NumEdges(); e++ {
		ed := g.Edge(e)
		fmt.Fprintf(w, "E\t%d\t%d\t%.2f\t%.2f\t%.4f\t%s\n",
			ed.From, ed.To, ed.Length, ed.TravelTime, ed.Fuel, ed.Type)
	}
	return w.Flush()
}

func writeTrajectories(path string, ts []*traj.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# T: id\tdriver\tdepart_s\tpeak\trecords\n")
	fmt.Fprintf(w, "# R: t_s\tx\ty\n")
	for _, t := range ts {
		fmt.Fprintf(w, "T\t%d\t%d\t%.1f\t%t\t%d\n", t.ID, t.Driver, t.Depart, t.Peak, len(t.Records))
		for _, rec := range t.Records {
			fmt.Fprintf(w, "R\t%.1f\t%.2f\t%.2f\n", rec.T, rec.P.X, rec.P.Y)
		}
	}
	return w.Flush()
}

func writeSummary(path string, g *roadnet.Graph, ts []*traj.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "vertices: %d\nedges: %d\ntrajectories: %d\nmean distance: %.2f km\n",
		g.NumVertices(), g.NumEdges(), len(ts), traj.MeanDistanceKm(g, ts))
	for _, b := range traj.DistanceHistogram(g, ts, []float64{2, 5, 10, 50}) {
		fmt.Fprintf(f, "distance %s: %d (%.1f%%)\n", b.Label(), b.Count, b.Percent)
	}
	return nil
}
