// Command l2rartifact manages persisted L2R routing artifacts: the
// production workflow of building the routing infrastructure once,
// shipping it as a file, and serving or updating it later.
//
// Usage:
//
//	l2rartifact build -out router.l2r [-net n1|n2|tiny] [-trips N] [-seed N] [-match]
//	l2rartifact inspect -in router.l2r
//	l2rartifact route -in router.l2r -from V -to V
//	l2rartifact ingest -in router.l2r -out updated.l2r [-trips N] [-seed N]
//
// The ingest subcommand simulates a fresh day of traffic against the
// artifact's road network and folds it in incrementally (no rebuild),
// demonstrating the paper's "real-time region graph updates" future
// work.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "route":
		cmdRoute(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: l2rartifact build|inspect|route|ingest [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "l2rartifact: "+format+"\n", args...)
	os.Exit(1)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("out", "router.l2r", "artifact output path")
	network := fs.String("net", "n2", "network config: n1, n2 or tiny")
	trips := fs.Int("trips", 2000, "number of training trajectories")
	seed := fs.Int64("seed", 1, "world seed")
	match := fs.Bool("match", false, "run the GPS map-matching pipeline")
	name := fs.String("name", "", "world name stamped into the artifact metadata (tenant name in fleet serving)")
	fs.Parse(args)

	g, cfg := world(*network, *seed, *trips)
	ts := traj.NewSimulator(g, cfg).Run()
	start := time.Now()
	r, err := l2r.Build(g, ts, l2r.Options{SkipMapMatching: !*match})
	if err != nil {
		fatalf("build: %v", err)
	}
	if *name != "" {
		r.SetName(*name)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("create %s: %v", *out, err)
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		fatalf("save: %v", err)
	}
	st := r.Stats()
	fmt.Printf("built in %s: %d regions, %d T-edges, %d B-edges -> %s\n",
		time.Since(start).Round(time.Millisecond), st.Regions, st.TEdges, st.BEdges, *out)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "router.l2r", "artifact path")
	fs.Parse(args)

	r := load(*in)
	st := r.Stats()
	rg := r.RegionGraph()
	meta := r.Meta()
	fmt.Printf("artifact %s\n", *in)
	if meta.Name != "" {
		fmt.Printf("  name:         %s\n", meta.Name)
	}
	if meta.Generation == 0 {
		// Pre-metadata (v1) artifacts load fine but carry no meta.
		fmt.Printf("  metadata:     none (v1 artifact)\n")
	} else {
		fmt.Printf("  generation:   %d (saved %s)\n", meta.Generation,
			time.Unix(0, meta.SavedUnixNano).Format(time.RFC3339))
		fmt.Printf("  built with:   backend %s, clustering %s, min confidence %.2f\n",
			meta.Build.PathBackend, meta.Build.ClusterMethod, meta.Build.MinConfidence)
	}
	fmt.Printf("  road network: %d vertices, %d edges\n", r.Road().NumVertices(), r.Road().NumEdges())
	fmt.Printf("  regions:      %d\n", st.Regions)
	fmt.Printf("  T-edges:      %d\n", rg.TEdgeCount())
	fmt.Printf("  B-edges:      %d\n", rg.BEdgeCount())
	fmt.Printf("  learned:      %d preferences\n", st.LearnedPrefs)
	fmt.Printf("  transferred:  %d (null: %d)\n", st.TransferredOK, st.NullBEdges)
	fmt.Printf("  offline time: match %s, cluster %s, learn %s, transfer %s, materialize %s\n",
		st.MatchTime.Round(time.Millisecond), st.ClusterTime.Round(time.Millisecond),
		st.LearnTime.Round(time.Millisecond), st.TransferTime.Round(time.Millisecond),
		st.MaterializeTime.Round(time.Millisecond))
}

func cmdRoute(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	in := fs.String("in", "router.l2r", "artifact path")
	from := fs.Int("from", 0, "source vertex ID")
	to := fs.Int("to", 1, "destination vertex ID")
	fs.Parse(args)

	r := load(*in)
	n := r.Road().NumVertices()
	if *from < 0 || *from >= n || *to < 0 || *to >= n {
		fatalf("vertex IDs must be in [0,%d)", n)
	}
	res := r.Route(roadnet.VertexID(*from), roadnet.VertexID(*to))
	fmt.Printf("query %d -> %d (%s)\n", *from, *to, res.Category)
	if len(res.Path) == 0 {
		fmt.Println("no path")
		return
	}
	fmt.Printf("path: %d vertices, %.2f km, %.1f min\n",
		len(res.Path), res.Path.Length(r.Road())/1000,
		res.Path.Cost(r.Road(), roadnet.TT)/60)
	if res.UsedRegionPath {
		fmt.Printf("region path: %v\n", res.RegionPath)
	}
}

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("in", "router.l2r", "artifact path")
	out := fs.String("out", "router-updated.l2r", "updated artifact path")
	trips := fs.Int("trips", 200, "number of new trajectories to simulate")
	seed := fs.Int64("seed", 42, "traffic seed")
	fs.Parse(args)

	r := load(*in)
	cfg := traj.D2Like(*seed, *trips)
	ts := traj.NewSimulator(r.Road(), cfg).Run()
	st := r.Ingest(ts, l2r.IngestOptions{SkipMapMatching: true})
	fmt.Printf("ingested %d paths in %s: %d edges touched, %d upgraded, %d new, staleness %.1f%%\n",
		st.Paths, st.Elapsed.Round(time.Millisecond), len(st.TouchedEdges),
		st.UpgradedEdges, st.NewEdges, 100*st.StalenessRatio())
	if st.RebuildRecommended {
		fmt.Println("note: staleness above threshold; full rebuild recommended")
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("create %s: %v", *out, err)
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("updated artifact -> %s\n", *out)
}

func load(path string) *l2r.Router {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	r, err := l2r.Load(f)
	if err != nil {
		fatalf("load %s: %v", path, err)
	}
	return r
}

func world(network string, seed int64, trips int) (*roadnet.Graph, traj.SimConfig) {
	switch network {
	case "n1":
		return roadnet.Generate(roadnet.N1Like(seed)), traj.D1Like(seed+1, trips)
	case "n2":
		return roadnet.Generate(roadnet.N2Like(seed)), traj.D2Like(seed+1, trips)
	case "tiny":
		return roadnet.Generate(roadnet.Tiny(seed)), traj.D2Like(seed+1, trips)
	default:
		fatalf("unknown network %q", network)
		return nil, traj.SimConfig{}
	}
}
