// Command l2route builds an L2R router over a synthetic world and
// answers routing queries from the command line, printing the L2R path
// next to the shortest and fastest baselines so the differences are
// visible.
//
// Usage:
//
//	l2route [-net n1|n2|tiny] [-trips N] [-seed N] [-match] [-n queries] [-k alternatives]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/pref"
	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

func main() {
	network := flag.String("net", "n2", "network config: n1, n2 or tiny")
	trips := flag.Int("trips", 1500, "number of training trajectories")
	seed := flag.Int64("seed", 1, "world seed")
	match := flag.Bool("match", false, "exercise the GPS map-matching pipeline")
	n := flag.Int("n", 5, "number of demo queries to answer")
	k := flag.Int("k", 1, "alternatives per query (RouteK)")
	flag.Parse()

	var g *roadnet.Graph
	var cfg traj.SimConfig
	switch *network {
	case "n1":
		g = roadnet.Generate(roadnet.N1Like(*seed))
		cfg = traj.D1Like(*seed+1, *trips)
	case "n2":
		g = roadnet.Generate(roadnet.N2Like(*seed))
		cfg = traj.D2Like(*seed+1, *trips)
	case "tiny":
		g = roadnet.Generate(roadnet.Tiny(*seed))
		cfg = traj.D2Like(*seed+1, *trips)
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *network)
		os.Exit(2)
	}

	all := traj.NewSimulator(g, cfg).Run()
	train, test := traj.Split(all, 0.75*cfg.HorizonSec)
	fmt.Printf("world: %d vertices, %d edges, %d train / %d test trips\n",
		g.NumVertices(), g.NumEdges(), len(train), len(test))

	router, err := l2r.Build(g, train, l2r.Options{SkipMapMatching: !*match})
	if err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n", err)
		os.Exit(1)
	}
	st := router.Stats()
	fmt.Printf("built: %d regions, %d T-edges, %d B-edges (cluster %v, learn %v, transfer %v)\n\n",
		st.Regions, st.TEdges, st.BEdges, st.ClusterTime, st.LearnTime, st.TransferTime)

	sh := baseline.NewShortest(g)
	fa := baseline.NewFastest(g)
	for i, tr := range test {
		if i >= *n {
			break
		}
		s, d := tr.Source(), tr.Destination()
		res := router.Route(s, d)
		sp := sh.Route(baseline.Query{S: s, D: d})
		fp := fa.Route(baseline.Query{S: s, D: d})
		fmt.Printf("query %d: %d -> %d  (%.1f km, %s)\n", i, s, d, tr.Truth.Length(g)/1000, res.Category)
		fmt.Printf("  ground truth: %3d vertices\n", len(tr.Truth))
		fmt.Printf("  L2R:      %3d vertices, sim %.2f (region path %v)\n",
			len(res.Path), pref.SimEq1(g, tr.Truth, res.Path), res.RegionPath)
		fmt.Printf("  Shortest: %3d vertices, sim %.2f\n", len(sp), pref.SimEq1(g, tr.Truth, sp))
		fmt.Printf("  Fastest:  %3d vertices, sim %.2f\n", len(fp), pref.SimEq1(g, tr.Truth, fp))
		if *k > 1 {
			for j, alt := range router.RouteK(s, d, *k) {
				if j == 0 {
					continue // identical to the L2R line above
				}
				fmt.Printf("  alt %d:    %3d vertices, sim %.2f\n",
					j, len(alt.Path), pref.SimEq1(g, tr.Truth, alt.Path))
			}
		}
	}
}
