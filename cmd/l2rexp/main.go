// Command l2rexp regenerates the tables and figures of the paper's
// evaluation over the synthetic D1-like and D2-like worlds.
//
// Usage:
//
//	l2rexp [-data D1|D2|both] [-exp all|table2,table4,fig6a,fig6b,fig9a,fig9b,fig10,fig11,fig12,fig13,offline,clustering,clustering-e2e,casecov,ch,mu,matchrate,significance]
//	       [-scale small|full] [-seed N] [-match] [-workers N]
//
// Examples:
//
//	l2rexp -data D2 -exp table2,fig10
//	l2rexp -data both -exp all -scale full -match
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

var experiments = []struct {
	name string
	run  func(*exp.World) string
}{
	{"table2", exp.TableII},
	{"table4", exp.TableIV},
	{"fig6a", exp.Fig6a},
	{"fig6b", exp.Fig6b},
	{"fig9a", exp.Fig9a},
	{"fig9b", exp.Fig9b},
	{"fig10", exp.Fig10},
	{"fig11", exp.Fig11},
	{"fig12", exp.Fig12},
	{"fig13", exp.Fig13},
	{"offline", exp.Offline},
	// Ablations and extensions beyond the paper's published figures.
	{"clustering", exp.AblationClustering},
	{"casecov", exp.CaseCoverage},
	{"ch", exp.CHSpeedup},
	{"mu", exp.AblationMu},
	{"clustering-e2e", exp.AblationClusteringE2E},
	{"matchrate", exp.MatchRate},
	{"significance", exp.Significance},
}

func main() {
	data := flag.String("data", "D2", "dataset analogue: D1, D2 or both")
	expList := flag.String("exp", "all", "comma-separated experiment list or 'all'")
	scale := flag.String("scale", "small", "experiment scale: small or full")
	seed := flag.Int64("seed", 1, "world seed")
	match := flag.Bool("match", false, "run the full GPS map-matching pipeline")
	workers := flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := exp.Config{Seed: *seed, UseMapMatching: *match, Workers: *workers}
	switch *scale {
	case "small":
		cfg.Scale = exp.Small
	case "full":
		cfg.Scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var worlds []*exp.World
	switch strings.ToUpper(*data) {
	case "D1":
		worlds = append(worlds, exp.NewD1(cfg))
	case "D2":
		worlds = append(worlds, exp.NewD2(cfg))
	case "BOTH":
		worlds = append(worlds, exp.NewD1(cfg), exp.NewD2(cfg))
	default:
		fmt.Fprintf(os.Stderr, "unknown data %q\n", *data)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expList == "all" {
		for _, e := range experiments {
			want[e.name] = true
		}
	} else {
		for _, n := range strings.Split(*expList, ",") {
			want[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for n := range want {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", n)
			os.Exit(2)
		}
	}

	for _, w := range worlds {
		for _, e := range experiments {
			if want[e.name] {
				fmt.Println(e.run(w))
			}
		}
	}
}
