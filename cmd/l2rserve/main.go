// Command l2rserve serves built L2R routers over HTTP: concurrent
// routing queries with a sharded result cache and singleflight
// request coalescing, live trajectory ingestion via copy-on-write
// snapshot swaps, and serving metrics.
//
// A deployment loads artifacts produced by l2rartifact (paying the
// offline build once). Three modes:
//
//	l2rserve -artifact router.l2r          one world, single-tenant API
//	l2rserve -artifact-dir artifacts/      one tenant per *.l2r file,
//	                                       hot-reloaded on change
//	l2rserve [-net n1|n2|tiny] [-trips N]  synthetic world (demos,
//	                                       load tests)
//
// Single-tenant endpoints:
//
//	GET  /route?src=S&dst=D
//	GET  /route/alternatives?src=S&dst=D&k=K
//	POST /ingest                 {"paths": [[v0,v1,...], ...]}
//	POST /stream                 NDJSON GPS points (raw feeds)
//	GET  /stats
//	GET  /healthz
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/trace?n=50       recent request traces (?slow=1 for the
//	                             slow-query log, ?min_ms=5 to filter)
//	GET  /debug/snapshot         non-blocking engine internals
//	GET  /debug/quality          shadow-score quality, drift gauges and
//	                             worst-route exemplars
//	GET  /debug/maint            background-maintenance state (with
//	                             -maint; 404 otherwise)
//
// With -stream (the default) a streaming ingestion pipeline is
// attached: POST /stream accepts raw per-vehicle NDJSON GPS points
// ({"vehicle":"v1","t":12.5,"x":...,"y":...}), sessionizes them,
// map-matches them online and batches the closed trajectories into
// the live engine; /stats grows a "stream" block. Replay modes feed
// the pipeline without a client: -replay N streams N freshly
// simulated trips (synthetic worlds only), -replay-file f streams a
// recorded NDJSON point log, both paced by -replay-rate.
//
// In fleet mode (-artifact-dir) the same endpoints nest under
// /t/{tenant}/ (tenant = artifact file name sans .l2r), and the
// fleet adds GET /tenants, aggregate GET /stats and GET /healthz.
// The directory is rescanned every -reload interval: new *.l2r files
// become tenants, and a file whose mtime or size changed is reloaded
// and atomically swapped into the live fleet without dropping
// in-flight queries — drop a rebuilt artifact into the directory and
// its tenant picks it up.
//
// With -wal-dir the engine is durable: every ingested batch (HTTP
// /ingest or the streaming pipeline) is appended to a write-ahead log
// before the snapshot swap that applies it, checkpoints fold the log
// into a saved artifact every -checkpoint-every trajectories, and a
// restart recovers checkpoint + log — live-learned state survives
// crashes. In fleet mode the directory is a root with one
// subdirectory per tenant. -wal-sync picks the fsync policy (always |
// none). See OPERATIONS.md for the runbook.
//
// With -maint a background maintenance pipeline rides on each engine:
// ingested trajectories accumulate as evidence and, when a trigger
// fires (preference drift over -maint-drift-tv, volume over
// -maint-min-evidence, or the -maint-interval timer), the model is
// re-transduced on a clone off the hot path and published through the
// same snapshot swap ingestion uses — queries never block, and on a
// durable engine the rebuilt model is checkpointed immediately. GET
// /debug/maint (and a maintenance block in /stats, plus the
// l2r_maint_* metric family) exposes accumulator occupancy, trigger
// gauges and rebuild history. In fleet mode every tenant gets its own
// maintainer. OPERATIONS.md covers trigger tuning and rollback.
//
// Telemetry: every request gets an X-Request-ID (honored when the
// caller supplies one) and, with -trace (the default), a span-tree
// trace of its hot-path stages; requests slower than -slow-query land
// in the slow-query log. One structured access-log line per request
// goes to stderr (-log-format text|json). -debug-addr starts a
// second listener with net/http/pprof, expvar and the telemetry
// endpoints — keep it on localhost or a private interface. With
// -quality-sample-rate > 0 (default 0.1) a model-quality observer
// shadow-scores that fraction of ingested trajectories off the hot
// path: the served route is recomputed for each sampled trip's OD and
// scored against the driven path (paper Eq. 1 / Eq. 4), feeding
// l2r_quality_* and l2r_drift_* gauges on /metrics and the
// worst-route exemplar ring on GET /debug/quality. See the
// Monitoring section of OPERATIONS.md.
//
// The server drains in-flight requests on SIGINT/SIGTERM; a durable
// deployment checkpoints on the way down so the next start is
// replay-free.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	artifact := flag.String("artifact", "", "router artifact to serve (from l2rartifact / Router.Save)")
	artifactDir := flag.String("artifact-dir", "", "serve every *.l2r in this directory as a tenant (fleet mode, hot-reloaded)")
	reload := flag.Duration("reload", 5*time.Second, "artifact-dir rescan interval (fleet mode)")
	network := flag.String("net", "n2", "synthetic network when no artifact: n1, n2 or tiny")
	trips := flag.Int("trips", 1500, "synthetic training trajectories when no artifact")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	cacheSize := flag.Int("cache", 4096, "route cache capacity in entries (negative disables)")
	cacheShards := flag.Int("cache-shards", 16, "route cache shard count")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	pathEngine := flag.String("path-engine", "dijkstra", "shortest-path backend: dijkstra or ch (contraction hierarchy, built once at startup)")
	chPrewarm := flag.Bool("ch-prewarm", true, "ch backend: pre-customize all learned preference metrics at startup (false defers each to its first query)")
	walDir := flag.String("wal-dir", "", "durable ingestion: write-ahead log + checkpoint directory (fleet mode: one subdirectory per tenant); empty disables")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "durable ingestion: trajectories between automatic checkpoints (negative disables)")
	walSync := flag.String("wal-sync", "always", "write-ahead log fsync policy: always or none")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	streamOn := flag.Bool("stream", true, "attach the streaming GPS ingestion pipeline (POST /stream)")
	streamBatch := flag.Int("stream-batch", 32, "stream batching: trajectories per ingest swap")
	streamFlush := flag.Duration("stream-flush", 2*time.Second, "stream batching: max age before a partial batch flushes")
	streamGap := flag.Float64("stream-gap", 300, "stream sessionization: time gap (s) that ends a trip")
	replayTrips := flag.Int("replay", 0, "replay N freshly simulated trips through the stream pipeline (synthetic worlds only)")
	replayFile := flag.String("replay-file", "", "replay a recorded NDJSON point log through the stream pipeline")
	replayRate := flag.Float64("replay-rate", 0, "replay pacing: multiple of the feed's own clock (0 = full speed)")
	debugAddr := flag.String("debug-addr", "", "separate diagnostics listener (pprof, expvar, /metrics), e.g. localhost:6060; empty disables")
	traceOn := flag.Bool("trace", true, "record per-request span traces (GET /debug/trace)")
	traceRing := flag.Int("trace-ring", 256, "completed traces kept for /debug/trace")
	qualityRate := flag.Float64("quality-sample-rate", 0.1, "shadow-score this fraction of ingested trajectories off the hot path (GET /debug/quality); 0 disables")
	qualityRing := flag.Int("quality-ring", 16, "worst-scoring OD exemplars kept for /debug/quality")
	maintOn := flag.Bool("maint", false, "attach the background maintenance pipeline: accumulate evidence and re-transduce the model off the hot path when a trigger fires (GET /debug/maint)")
	maintDrift := flag.Float64("maint-drift-tv", 0.25, "maintenance drift trigger: rebuild when preference drift (TV distance) exceeds this (negative disables)")
	maintEvidence := flag.Int("maint-min-evidence", 4096, "maintenance evidence trigger: rebuild after this many trajectories accumulate (negative disables)")
	maintInterval := flag.Duration("maint-interval", 0, "maintenance timer trigger: rebuild this long after the previous one (0 disables)")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond, "requests at least this slow also land in the slow-query log (negative disables)")
	logFormat := flag.String("log-format", "text", "access log format: text or json")
	flag.Parse()

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		log.Fatalf("unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(logHandler)

	tracer := l2r.NewTracer(l2r.TraceConfig{Ring: *traceRing, SlowThreshold: *slowQuery})
	tracer.SetEnabled(*traceOn)

	var backend l2r.PathBackend
	switch *pathEngine {
	case "dijkstra":
		backend = l2r.BackendDijkstra
	case "ch":
		backend = l2r.BackendCH
	default:
		log.Fatalf("unknown -path-engine %q (want dijkstra or ch)", *pathEngine)
	}

	var syncPolicy l2r.WALSyncPolicy
	switch *walSync {
	case "always":
		syncPolicy = l2r.WALSyncAlways
	case "none":
		syncPolicy = l2r.WALSyncNone
	default:
		log.Fatalf("unknown -wal-sync %q (want always or none)", *walSync)
	}

	opt := l2r.ServeOptions{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		CacheShards:     *cacheShards,
		PathBackend:     backend,
		WALDir:          *walDir,
		CheckpointEvery: *checkpointEvery,
		WALSync:         syncPolicy,
		Tracer:          tracer,
	}

	streamCfg := l2r.StreamConfig{
		MaxBatch: *streamBatch,
		FlushAge: *streamFlush,
		GapS:     *streamGap,
	}

	if *artifactDir != "" {
		if *replayTrips > 0 || *replayFile != "" {
			log.Fatal("replay modes are single-tenant; in fleet mode feed POST /t/{tenant}/stream instead")
		}
		var maintCfg *l2r.MaintConfig
		if *maintOn {
			maintCfg = &l2r.MaintConfig{DriftTV: *maintDrift, MinEvidence: *maintEvidence, Interval: *maintInterval}
		}
		serveFleet(*addr, *debugAddr, *artifactDir, *reload, *drain, opt, *streamOn, streamCfg, *qualityRate, *qualityRing, maintCfg, logger)
		return
	}

	router, err := loadRouter(*artifact, *network, *trips, *seed, backend, *chPrewarm)
	if err != nil {
		log.Fatal(err)
	}
	st := router.Stats()
	log.Printf("router ready: %d vertices, %d regions, %d T-edges, %d B-edges",
		router.Road().NumVertices(), st.Regions, st.TEdges, st.BEdges)

	engine, err := l2r.NewDurableEngine(router, opt)
	if err != nil {
		log.Fatalf("recovering %s: %v", *walDir, err)
	}
	if d := engine.Stats().Durability; d != nil {
		log.Printf("durable: WAL at %s (sync %s, checkpoint every %d trajectories)", *walDir, syncPolicy, *checkpointEvery)
		if d.RecoveredFromCheckpoint || d.ReplayedRecords > 0 {
			log.Printf("recovered: checkpoint=%v, %d WAL records (%d trajectories) replayed, torn tail truncated=%v",
				d.RecoveredFromCheckpoint, d.ReplayedRecords, d.ReplayedTrajectories, d.TornTailTruncated)
		}
	}
	if backend == l2r.BackendCH {
		st = router.Stats()
		log.Printf("path engine: customizable contraction hierarchy (%d shortcuts, contracted in %s; %d metrics customized in %s)",
			st.CHShortcuts, st.CHBuildTime.Round(time.Millisecond),
			st.CHMetrics, st.CHCustomizeTime.Round(time.Microsecond))
	} else {
		log.Printf("path engine: dijkstra")
	}
	if *qualityRate > 0 {
		qo := l2r.AttachQuality(engine, l2r.QualityConfig{SampleRate: *qualityRate, Ring: *qualityRing})
		defer qo.Close()
		log.Printf("quality observer attached: GET /debug/quality (sample rate %.2f, %d exemplars)",
			*qualityRate, *qualityRing)
	}
	if *maintOn {
		mt := l2r.AttachMaint(engine, l2r.MaintConfig{
			DriftTV:     *maintDrift,
			MinEvidence: *maintEvidence,
			Interval:    *maintInterval,
		})
		defer mt.Close()
		log.Printf("maintenance pipeline attached: GET /debug/maint (drift > %.2f, evidence >= %d, interval %v)",
			*maintDrift, *maintEvidence, *maintInterval)
	}
	var background func(context.Context)
	if *streamOn {
		ing := l2r.AttachStream(engine, streamCfg)
		defer ing.Close()
		log.Printf("streaming pipeline attached: POST /stream (batch %d, flush %v, gap %.0fs)",
			*streamBatch, *streamFlush, *streamGap)
		replay, err := replayPoints(*replayTrips, *replayFile, *artifact, *network, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if len(replay) > 0 {
			background = func(ctx context.Context) {
				n := l2r.ReplayStream(ctx, ing, replay, *replayRate)
				st := ing.StreamStats()
				log.Printf("replay done: %d points -> %d segments closed, %d trajectories flushed over %d swaps",
					n, st.SegmentsClosed, st.FlushedTrajectories, st.Flushes)
			}
		}
	} else if *replayTrips > 0 || *replayFile != "" {
		log.Fatal("replay modes need the stream pipeline; drop -stream=false")
	}

	api := engine.Handler()
	startDebugListener(*debugAddr, api)
	log.Printf("serving on %s (cache %d entries / %d shards, tracing %v)", *addr, *cacheSize, *cacheShards, tracer.Enabled())
	serveAndDrain(*addr, l2r.AccessLog(logger, api), *drain, background)
	if engine.Durable() {
		// A planned shutdown checkpoints so the next start replays
		// nothing; a crash skips this and replays the WAL instead.
		if err := engine.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("final checkpoint written; restart will be replay-free")
		}
		engine.Close()
	}
	final := engine.Stats()
	log.Printf("served %d queries (%.1f qps, cache hit rate %.1f%%, %d coalesced, generation %d, %d ingests)",
		final.Queries, final.QPS, 100*final.CacheHitRate, final.CoalescedQueries,
		final.SnapshotGeneration, final.Ingests)
	if final.Stream != nil {
		log.Printf("stream: %d points in, %d segments closed (%d dropped), %d trajectories over %d swaps",
			final.Stream.PointsIn, final.Stream.SegmentsClosed, final.Stream.SegmentsDropped,
			final.Stream.FlushedTrajectories, final.Stream.Flushes)
	}
}

// replayPoints builds the replay feed: a recorded NDJSON log, or a
// fresh simulation over the synthetic world's network (artifacts
// carry no simulator configuration, so -replay needs -net).
func replayPoints(replayTrips int, replayFile, artifact, network string, seed int64) ([]l2r.StreamPoint, error) {
	if replayFile != "" {
		f, err := os.Open(replayFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pts, err := l2r.ReadStreamNDJSON(f)
		if err != nil {
			return nil, err
		}
		log.Printf("replaying %d recorded points from %s", len(pts), replayFile)
		return pts, nil
	}
	if replayTrips <= 0 {
		return nil, nil
	}
	if artifact != "" {
		return nil, fmt.Errorf("-replay needs a synthetic world (use -replay-file with artifacts)")
	}
	var g *roadnet.Graph
	var cfg traj.SimConfig
	switch network {
	case "n1":
		g = roadnet.Generate(roadnet.N1Like(seed))
		cfg = traj.D1Like(seed+2, replayTrips)
	case "n2":
		g = roadnet.Generate(roadnet.N2Like(seed))
		cfg = traj.D2Like(seed+2, replayTrips)
	case "tiny":
		g = roadnet.Generate(roadnet.Tiny(seed))
		cfg = traj.D2Like(seed+2, replayTrips)
	default:
		return nil, fmt.Errorf("unknown network %q", network)
	}
	live := traj.NewSimulator(g, cfg).Run()
	pts := l2r.StreamPointsFrom(live, true)
	log.Printf("replaying %d simulated trips (%d points)", len(live), len(pts))
	return pts, nil
}

// serveFleet runs the multi-tenant mode: every *.l2r in dir is a
// tenant, hot-reloaded on change while the fleet serves. With
// streaming on, every tenant — including ones hot-loaded later — gets
// its own pipeline behind POST /t/{tenant}/stream.
func serveFleet(addr, debugAddr, dir string, reload, drain time.Duration, opt l2r.ServeOptions, streamOn bool, streamCfg l2r.StreamConfig, qualityRate float64, qualityRing int, maintCfg *l2r.MaintConfig, logger *slog.Logger) {
	fleet := l2r.NewFleet(opt)
	if streamOn {
		streams := l2r.AttachFleetStreams(fleet, streamCfg)
		defer streams.Close()
		log.Printf("streaming pipelines attached: POST /t/{tenant}/stream")
	}
	if qualityRate > 0 {
		quality := l2r.AttachFleetQuality(fleet, l2r.QualityConfig{SampleRate: qualityRate, Ring: qualityRing})
		defer quality.Close()
		log.Printf("quality observers attached: GET /t/{tenant}/debug/quality (sample rate %.2f)", qualityRate)
	}
	if maintCfg != nil {
		maints := l2r.AttachFleetMaint(fleet, *maintCfg)
		defer maints.Close()
		log.Printf("maintenance pipelines attached: GET /t/{tenant}/debug/maint")
	}
	watcher := l2r.NewFleetWatcher(fleet, dir)
	watcher.Logf = log.Printf
	loaded, _, failed := watcher.Scan()
	if loaded == 0 {
		log.Fatalf("no loadable *%s artifacts in %s (%d failed)", l2r.ArtifactExt, dir, failed)
	}
	for _, name := range fleet.Names() {
		e, _ := fleet.Get(name)
		snap := e.Snapshot()
		log.Printf("tenant %q: %d vertices, %d regions (artifact generation %d)",
			name, snap.Road().NumVertices(), snap.Stats().Regions, snap.Meta().Generation)
		if d := e.Stats().Durability; d != nil && (d.RecoveredFromCheckpoint || d.ReplayedRecords > 0) {
			log.Printf("tenant %q recovered: checkpoint=%v, %d WAL records (%d trajectories) replayed",
				name, d.RecoveredFromCheckpoint, d.ReplayedRecords, d.ReplayedTrajectories)
		}
	}

	api := fleet.Handler()
	startDebugListener(debugAddr, api)
	log.Printf("serving fleet of %d tenants on %s (rescan every %v): /t/{tenant}/route, /tenants, /stats",
		fleet.Len(), addr, reload)
	serveAndDrain(addr, l2r.AccessLog(logger, api), drain, func(ctx context.Context) {
		watcher.Watch(ctx, reload)
	})
	if opt.WALDir != "" {
		for _, name := range fleet.Names() {
			if e, ok := fleet.Get(name); ok && e.Durable() {
				if err := e.Checkpoint(); err != nil {
					log.Printf("tenant %q final checkpoint: %v", name, err)
				}
			}
		}
		fleet.Close()
		log.Printf("final checkpoints written; restart will be replay-free")
	}
	final := fleet.Stats()
	log.Printf("served %d queries across %d tenants (%.1f qps, cache hit rate %.1f%%, %d coalesced, %d ingests)",
		final.Queries, final.Tenants, final.QPS, 100*final.CacheHitRate,
		final.CoalescedQueries, final.Ingests)
}

// startDebugListener serves runtime diagnostics on a separate address
// so pprof and expvar never share a port with query traffic (keep it
// loopback or firewalled — profiles leak internals). The API's own
// telemetry endpoints (/metrics, /debug/trace, /debug/snapshot) are
// mounted here too, so one diagnostics port carries everything an
// operator needs mid-incident. No-op when addr is empty.
func startDebugListener(addr string, api http.Handler) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", api)
	mux.Handle("/debug/trace", api)
	mux.Handle("/debug/snapshot", api)
	go func() {
		log.Printf("debug listener on %s (pprof, expvar, /metrics, /debug/trace)", addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug listener: %v", err)
		}
	}()
}

// serveAndDrain runs an HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests for up to the drain timeout. Signal handling is
// installed here — after the offline build/loading work — so Ctrl-C
// during a minutes-long startup still kills the process immediately.
// background, when non-nil, runs alongside the server and is stopped
// by the same signal.
func serveAndDrain(addr string, h http.Handler, drain time.Duration, background func(context.Context)) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if background != nil {
		go background(ctx)
	}
	srv := &http.Server{Addr: addr, Handler: h}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("listen: %v", err)
		}
	}()
	<-ctx.Done()
	log.Printf("shutting down, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// loadRouter either loads a saved artifact or builds a synthetic world.
// For synthetic builds the backend is passed to Build so B-edge
// materialization already runs on it; loaded artifacts are upgraded by
// the serve engine (ServeOptions.PathBackend) instead.
func loadRouter(artifact, network string, trips int, seed int64, backend l2r.PathBackend, prewarm bool) (*l2r.Router, error) {
	if artifact != "" {
		f, err := os.Open(artifact)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("loading artifact %s", artifact)
		return l2r.Load(f)
	}

	var g *roadnet.Graph
	var cfg traj.SimConfig
	switch network {
	case "n1":
		g = roadnet.Generate(roadnet.N1Like(seed))
		cfg = traj.D1Like(seed+1, trips)
	case "n2":
		g = roadnet.Generate(roadnet.N2Like(seed))
		cfg = traj.D2Like(seed+1, trips)
	case "tiny":
		g = roadnet.Generate(roadnet.Tiny(seed))
		cfg = traj.D2Like(seed+1, trips)
	default:
		return nil, fmt.Errorf("unknown network %q", network)
	}
	log.Printf("no artifact: building synthetic %s world (%d trips, seed %d)", network, trips, seed)
	all := traj.NewSimulator(g, cfg).Run()
	train, _ := traj.Split(all, 0.75*cfg.HorizonSec)
	return l2r.Build(g, train, l2r.Options{SkipMapMatching: true, PathBackend: backend, NoMetricPrewarm: !prewarm})
}
