// Command l2rserve serves a built L2R router over HTTP: concurrent
// routing queries with a sharded result cache, live trajectory
// ingestion via copy-on-write snapshot swaps, and serving metrics.
//
// A deployment loads an artifact produced by l2rartifact (paying the
// offline build once); without -artifact the server builds a synthetic
// world on startup, which is handy for demos and load tests.
//
// Usage:
//
//	l2rserve -artifact router.l2r [-addr :8080] [-path-engine dijkstra|ch]
//	l2rserve [-net n1|n2|tiny] [-trips N] [-seed N] [-addr :8080] [-path-engine dijkstra|ch]
//
// Endpoints:
//
//	GET  /route?src=S&dst=D
//	GET  /route/alternatives?src=S&dst=D&k=K
//	POST /ingest                 {"paths": [[v0,v1,...], ...]}
//	GET  /stats
//	GET  /healthz
//
// The server drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/roadnet"
	"repro/internal/traj"
	"repro/l2r"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	artifact := flag.String("artifact", "", "router artifact to serve (from l2rartifact / Router.Save)")
	network := flag.String("net", "n2", "synthetic network when no artifact: n1, n2 or tiny")
	trips := flag.Int("trips", 1500, "synthetic training trajectories when no artifact")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	cacheSize := flag.Int("cache", 4096, "route cache capacity in entries (negative disables)")
	cacheShards := flag.Int("cache-shards", 16, "route cache shard count")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	pathEngine := flag.String("path-engine", "dijkstra", "shortest-path backend: dijkstra or ch (contraction hierarchy, built once at startup)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	var backend l2r.PathBackend
	switch *pathEngine {
	case "dijkstra":
		backend = l2r.BackendDijkstra
	case "ch":
		backend = l2r.BackendCH
	default:
		log.Fatalf("unknown -path-engine %q (want dijkstra or ch)", *pathEngine)
	}

	router, err := loadRouter(*artifact, *network, *trips, *seed, backend)
	if err != nil {
		log.Fatal(err)
	}
	st := router.Stats()
	log.Printf("router ready: %d vertices, %d regions, %d T-edges, %d B-edges",
		router.Road().NumVertices(), st.Regions, st.TEdges, st.BEdges)

	engine := l2r.NewEngine(router, l2r.ServeOptions{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		CacheShards: *cacheShards,
		PathBackend: backend,
	})
	if backend == l2r.BackendCH {
		st = router.Stats()
		log.Printf("path engine: contraction hierarchy (%d shortcuts, built in %s)",
			st.CHShortcuts, st.CHBuildTime.Round(time.Millisecond))
	} else {
		log.Printf("path engine: dijkstra")
	}
	srv := &http.Server{Addr: *addr, Handler: engine.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		log.Printf("serving on %s (cache %d entries / %d shards)", *addr, *cacheSize, *cacheShards)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("listen: %v", err)
		}
	}()

	<-ctx.Done()
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	final := engine.Stats()
	log.Printf("served %d queries (%.1f qps, cache hit rate %.1f%%, generation %d, %d ingests)",
		final.Queries, final.QPS, 100*final.CacheHitRate, final.SnapshotGeneration, final.Ingests)
}

// loadRouter either loads a saved artifact or builds a synthetic world.
// For synthetic builds the backend is passed to Build so B-edge
// materialization already runs on it; loaded artifacts are upgraded by
// the serve engine (ServeOptions.PathBackend) instead.
func loadRouter(artifact, network string, trips int, seed int64, backend l2r.PathBackend) (*l2r.Router, error) {
	if artifact != "" {
		f, err := os.Open(artifact)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("loading artifact %s", artifact)
		return l2r.Load(f)
	}

	var g *roadnet.Graph
	var cfg traj.SimConfig
	switch network {
	case "n1":
		g = roadnet.Generate(roadnet.N1Like(seed))
		cfg = traj.D1Like(seed+1, trips)
	case "n2":
		g = roadnet.Generate(roadnet.N2Like(seed))
		cfg = traj.D2Like(seed+1, trips)
	case "tiny":
		g = roadnet.Generate(roadnet.Tiny(seed))
		cfg = traj.D2Like(seed+1, trips)
	default:
		return nil, fmt.Errorf("unknown network %q", network)
	}
	log.Printf("no artifact: building synthetic %s world (%d trips, seed %d)", network, trips, seed)
	all := traj.NewSimulator(g, cfg).Run()
	train, _ := traj.Split(all, 0.75*cfg.HorizonSec)
	return l2r.Build(g, train, l2r.Options{SkipMapMatching: true, PathBackend: backend})
}
