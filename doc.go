// Package repro is the repository root of learn2route, a Go
// reproduction of "Learning to Route with Sparse Trajectory Sets"
// (Guo, Yang, Hu, Jensen — IEEE ICDE 2018).
//
// The public API lives in the l2r package; the paper's pipeline and all
// substrates live under internal/. The root package exists to host the
// benchmark suite (bench_test.go), which regenerates every table and
// figure of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package repro
