// Package repro is the repository root of learn2route, a Go
// reproduction of "Learning to Route with Sparse Trajectory Sets"
// (Guo, Yang, Hu, Jensen — IEEE ICDE 2018).
//
// The public API lives in the l2r package; the paper's pipeline and all
// substrates live under internal/. The root package exists to host the
// benchmark suite (bench_test.go), which regenerates every table and
// figure of the paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
//
// # Where to read
//
// ARCHITECTURE.md maps the paper's three offline steps and the online
// serving layer to packages, with the data flow and the
// concurrency/snapshot contract in one place. Every internal package
// carries a doc.go; the load-bearing ones are internal/core (pipeline
// assembly, unified routing, persistence), internal/serve (snapshot
// swapping, cache, coalescing, fleet), internal/route (the PathEngine
// seam), internal/region (the mutable region graph) and internal/pref
// (the preference model). examples/README.md indexes the runnable
// examples.
//
// # Serving
//
// Beyond the offline pipeline, internal/serve (re-exported as
// l2r.Engine) serves a built router to concurrent traffic: lock-free
// snapshot reads, copy-on-write live ingestion, a sharded LRU route
// cache with generation-based invalidation, singleflight coalescing of
// concurrent duplicate queries, and serving metrics. cmd/l2rserve
// wraps it in an HTTP server:
//
//	go run ./cmd/l2rserve -net tiny -trips 400 &
//	curl 'localhost:8080/route?src=1&dst=50'
//	curl -X POST localhost:8080/ingest -d '{"paths":[[1,2,3]]}'
//	curl localhost:8080/stats
//
// # Multi-tenant fleets
//
// The paper builds one region graph per city, so production runs many
// routers. l2r.Fleet (internal/serve.Fleet) hosts one named engine per
// world behind tenant-addressed HTTP routes, and a fleet watcher
// hot-reloads artifacts from a directory — a rebuilt *.l2r dropped in
// is atomically swapped into the live fleet without dropping in-flight
// queries:
//
//	go run ./cmd/l2rserve -artifact-dir artifacts/ &
//	curl 'localhost:8080/t/acity/route?src=1&dst=50'
//	curl localhost:8080/tenants
//	curl localhost:8080/stats
//
// See examples/fleet for the full walkthrough.
//
// # Architecture: the PathEngine seam
//
// Every shortest-path consumer — unified routing (Case 2 approach
// searches, fastest fallbacks, connector stitching), serving,
// baselines, the trajectory simulator and the experiment harness —
// programs against internal/route.PathEngine, a pluggable backend.
// route.Engine is plain Dijkstra (plus the paper's Algorithm 2);
// route.CHEngine answers scalar fastest paths through a contraction
// hierarchy (internal/ch) with shortcut unpacking and falls back to
// Dijkstra for preference-constrained and custom-cost searches. Select
// with l2r.Options{PathBackend: l2r.BackendCH} at build time,
// l2r.ServeOptions{PathBackend: l2r.BackendCH} when serving a loaded
// artifact, or l2rserve -path-engine ch.
//
// The concurrency contract: an engine serves one goroutine; Fork()
// returns a sibling sharing the immutable built state (road network,
// CH hierarchy) with fresh, lazily allocated query state. Router.Clone
// and the serve snapshot pools fork instead of allocating per-vertex
// search arrays per clone, and the hierarchy built once at Build (or
// EnableCH) time is carried through Clone, DeepClone and copy-on-write
// ingest swaps.
//
// # Verifying
//
// The tier-1 check is:
//
//	go build ./... && go test ./...
//
// with go test -race ./internal/serve/ covering the concurrent
// query/ingest paths and go test -bench 'BenchmarkServe$' . the
// serving throughput.
package repro
