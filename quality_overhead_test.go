package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/traj"
)

// TestQualityOverheadBudget pins the shadow-scoring tax on the serving
// hot path: an engine carrying a quality observer at the production
// default sample rate (0.1) must stay within 10% of an unobserved
// engine on the Zipf-skewed CH workload, with live ingest batches
// interleaved so the observer is actually offered work. The offer path
// runs under the engine's write lock and is a counter bump plus a
// bounded channel send for the sampled tenth; the re-routes themselves
// happen on the observer's own paced goroutine — anything above the
// budget means shadow scoring crept onto the route or ingest fast path.
func TestQualityOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	w := benchWorld(t)
	r := w.MustRouter()
	chRouter := r.DeepClone()
	chRouter.EnableCH(ch.Config{})
	qs := benchQueries(t)
	trips := w.Test
	if len(trips) < 8 {
		t.Skip("not enough test trajectories for ingest load")
	}

	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(qs)-1))
	mix := make([]int, 8192)
	for i := range mix {
		mix[i] = int(zipf.Uint64())
	}

	measure := func(e *serve.Engine) float64 {
		// Min of two runs: the second absorbs warm-up jitter.
		best := 0.0
		for run := 0; run < 2; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if i%1024 == 1023 {
						lo := (i / 1024 * 4) % (len(trips) - 4)
						batch := make([]*traj.Trajectory, 4)
						copy(batch, trips[lo:lo+4])
						e.IngestMatched(batch)
					}
					q := qs[mix[i%len(mix)]]
					e.Route(q.S, q.D)
				}
			})
			ns := float64(res.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	bare := serve.NewEngine(chRouter.DeepClone(), serve.Options{CacheSize: -1})
	observed := serve.NewEngine(chRouter.DeepClone(), serve.Options{CacheSize: -1})
	qo := quality.Attach(observed, quality.Config{SampleRate: 0.1})
	defer qo.Close()

	const budget = 1.10
	var ratio float64
	for attempt := 1; attempt <= 3; attempt++ {
		base := measure(bare)
		with := measure(observed)
		ratio = with / base
		t.Logf("attempt %d: unobserved %.0f ns/op, observed %.0f ns/op, ratio %.3f", attempt, base, with, ratio)
		if ratio <= budget {
			st := qo.QualityStats()
			t.Logf("observer: offered %d, sampled %d, scored %d, dropped %d",
				st.Offered, st.Sampled, st.Scored, st.Dropped)
			if st.Offered == 0 {
				t.Fatal("budget run offered the observer nothing; the comparison proved nothing")
			}
			return
		}
	}
	t.Fatalf("quality-observer overhead ratio %.3f exceeds the %.0f%% budget", ratio, 100*(budget-1))
}
